"""Operational telemetry for the experiment pipeline (DESIGN.md §9).

Three pieces, mirroring the sanitizer's zero-cost-when-off design:

* :mod:`~repro.telemetry.metrics` — a process-local registry of
  counters, gauges, and wall-clock timers with snapshot/diff/merge, so
  parallel workers ship per-request deltas back for aggregation;
* :mod:`~repro.telemetry.events` — :class:`TelemetrySink`, a JSONL
  event log (phase spans, cache traffic, pool lifecycle, summaries)
  enabled via ``--telemetry PATH`` / ``REPRO_TELEMETRY``;
* :mod:`~repro.telemetry.report` — the summarizer behind
  ``python -m repro.experiments telemetry-report``.

Disabled (the default), the instrumented code paths cost one ``None``
check; enabled, they never change simulation outcomes.
"""

from .events import PHASES, SERVICE_PHASES, TelemetrySink, telemetry_from_env
from .metrics import MetricsRegistry
from .report import format_report, read_events, render_report, summarize

__all__ = [
    "PHASES",
    "SERVICE_PHASES",
    "MetricsRegistry",
    "TelemetrySink",
    "telemetry_from_env",
    "format_report",
    "read_events",
    "render_report",
    "summarize",
]
