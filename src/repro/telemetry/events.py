"""Structured JSONL telemetry events (DESIGN.md §9).

A :class:`TelemetrySink` couples a :class:`~repro.telemetry.metrics.MetricsRegistry`
with an append-only JSONL event log.  Every event is one JSON object
per line carrying at least::

    {"v": 1, "event": "<type>", "ts": <unix time>, "pid": <os pid>, ...}

Event types emitted by the instrumented pipeline:

* ``span`` — one timed phase (``phase`` ∈ :data:`PHASES`, plus
  ``duration_s`` and context fields like ``app``/``system``/``input``);
* ``cache_load`` / ``cache_store`` / ``cache_quarantine`` — disk-cache
  traffic (``outcome`` ∈ hit/miss/corrupt for loads);
* ``worker_start`` / ``worker_result`` — process-pool lifecycle;
* ``summary`` — end-of-run registry snapshot plus cache/runner stats.

The file is opened in append mode, so parallel workers inheriting
``REPRO_TELEMETRY`` write interleaved complete lines into the same log
(each line is flushed whole; readers skip any malformed line).

The sink is the *enabled* half of a zero-cost-when-off design: code
holds ``Optional[TelemetrySink]`` and guards every call with one
``None`` check, exactly like the sanitizer pattern (DESIGN.md §8).
Telemetry never touches simulation state or RNG streams, so a
telemetry-on run is counter-for-counter identical to a plain run
(pinned by ``tests/test_determinism.py``).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Optional

from ..config import telemetry_path_from_env
from ..errors import ReproError
from .metrics import MetricsRegistry

SCHEMA_VERSION = 1

# The five instrumented pipeline stages, in pipeline order.
PHASES = (
    "workload_build",
    "trace_gen",
    "profile_collect",
    "plan_build",
    "simulate",
)

# Plan-service stages (repro.service), in request order: ingest fold,
# incremental plan build, staticcheck publish gate, request handling,
# plus the durability path (periodic state snapshots; ``service_restore``
# is emitted as a plain event, not a span, since it runs pre-loop).
SERVICE_PHASES = (
    "service_ingest",
    "service_build",
    "service_check",
    "service_request",
    "service_snapshot",
)


class TelemetrySink:
    """Metrics registry + JSONL event writer for one process."""

    def __init__(self, path: str, registry: Optional[MetricsRegistry] = None):
        if not path:
            raise ReproError("telemetry path must be a non-empty file path")
        self.path = path
        self.registry = registry if registry is not None else MetricsRegistry()
        parent = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(parent, exist_ok=True)
            self._fh = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot open telemetry log {path!r}: {exc}") from exc
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> None:
        """Append one event line; whole-line write + flush."""
        # Wall-clock timestamps are observability metadata, never results.
        record = {"v": SCHEMA_VERSION, "event": event, "ts": time.time(), "pid": self._pid}  # staticcheck: disable=L102
        record.update(fields)
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    @contextmanager
    def span(self, phase: str, **fields):
        """Time one pipeline phase; records a timer and emits a span event."""
        t0 = time.perf_counter()  # staticcheck: disable=L102
        try:
            yield
        finally:
            dt = time.perf_counter() - t0  # staticcheck: disable=L102
            self.registry.add_time(f"phase.{phase}", dt)
            self.emit("span", phase=phase, duration_s=dt, **fields)

    # ------------------------------------------------------------------
    def on_sim_run(self, result, fetch_units: int) -> None:
        """Coarse per-run counters from the timing simulator.

        Called once per :meth:`FrontendSimulator.run` (never per fetch
        unit) so the simulator's telemetry footprint is a single
        ``None`` check plus this call when enabled.
        """
        reg = self.registry
        reg.inc("sim.runs")
        reg.inc("sim.fetch_units", fetch_units)
        reg.inc("sim.instructions", result.instructions)
        reg.inc("sim.cycles", result.cycles)
        reg.inc("sim.btb_misses", result.btb_misses)

    def record_worker(self, pid: int, delta: Optional[Dict]) -> None:
        """Fold one worker request's metrics delta into this registry."""
        self.registry.inc(f"worker.{pid}.requests")
        self.registry.merge(delta)

    # ------------------------------------------------------------------
    def emit_summary(self, cache_stats=None, runner_stats=None) -> None:
        """End-of-run summary: registry snapshot + cache/runner stats."""
        fields: Dict = {"metrics": self.registry.snapshot()}
        if cache_stats is not None:
            fields["cache"] = {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "stores": cache_stats.stores,
                "quarantined": cache_stats.quarantined,
                "quarantine_deleted": cache_stats.quarantine_deleted,
            }
        if runner_stats is not None:
            fields["runner"] = {
                "simulations": runner_stats.simulations,
                "profiles_collected": runner_stats.profiles_collected,
                "disk_hits": runner_stats.disk_hits,
                "parallel_runs": runner_stats.parallel_runs,
            }
        self.emit("summary", **fields)

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass


def telemetry_from_env() -> Optional[TelemetrySink]:
    """Build a sink from ``REPRO_TELEMETRY``, or ``None`` when unset.

    Parallel workers inherit the environment, so enabling telemetry in
    the parent (``--telemetry PATH`` sets the variable) makes every
    worker append its spans to the same log.
    """
    path = telemetry_path_from_env()
    if path is None:
        return None
    return TelemetrySink(path)
