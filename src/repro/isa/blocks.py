"""Basic blocks and cache-line address helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .branches import Branch

DEFAULT_LINE_BYTES = 64


def cache_line(addr: int, line_bytes: int = DEFAULT_LINE_BYTES) -> int:
    """Return the cache-line index containing *addr*."""
    return addr // line_bytes


def cache_lines_of_range(
    start: int, size: int, line_bytes: int = DEFAULT_LINE_BYTES
) -> Tuple[int, ...]:
    """Return the cache-line indices spanned by ``[start, start+size)``."""
    if size <= 0:
        return (cache_line(start, line_bytes),)
    first = start // line_bytes
    last = (start + size - 1) // line_bytes
    return tuple(range(first, last + 1))


@dataclass(frozen=True)
class BasicBlock:
    """A straight-line code region ending in at most one branch.

    ``start`` is the block's first instruction address, ``size_bytes``
    its byte footprint (which determines I-cache behaviour), and
    ``instructions`` the number of instructions it retires.  ``branch``
    is the terminating control transfer, or ``None`` for blocks that
    fall through to ``start + size_bytes``.
    """

    index: int
    start: int
    size_bytes: int
    instructions: int
    branch: Optional[Branch] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("basic block must occupy at least one byte")
        if self.instructions <= 0:
            raise ValueError("basic block must contain at least one instruction")
        if self.branch is not None and not (
            self.start <= self.branch.pc < self.start + self.size_bytes
        ):
            raise ValueError(
                f"branch pc {self.branch.pc:#x} lies outside block "
                f"[{self.start:#x}, {self.start + self.size_bytes:#x})"
            )

    @property
    def end(self) -> int:
        """First address past the block."""
        return self.start + self.size_bytes

    @property
    def fallthrough_addr(self) -> int:
        return self.end

    def lines(self, line_bytes: int = DEFAULT_LINE_BYTES) -> Tuple[int, ...]:
        """Cache lines this block's bytes occupy."""
        return cache_lines_of_range(self.start, self.size_bytes, line_bytes)

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end
