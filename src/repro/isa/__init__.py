"""Instruction-set and address-space model.

The simulator does not execute real x86; it models just enough of a
binary's structure for BTB behaviour to be faithful: basic blocks with
byte sizes and instruction counts, and terminating branches with a PC,
a kind, and one or more targets.
"""

from .branches import Branch, BranchKind
from .blocks import BasicBlock, cache_line, cache_lines_of_range
from .binary import Binary

__all__ = [
    "Branch",
    "BranchKind",
    "BasicBlock",
    "Binary",
    "cache_line",
    "cache_lines_of_range",
]
