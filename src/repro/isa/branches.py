"""Branch model: kinds, classification helpers, and the Branch record."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class BranchKind(enum.Enum):
    """Control-transfer categories tracked by the simulator.

    The paper's BTB-MPKI metric counts only *direct* branches
    (conditional jumps, unconditional jumps, and direct calls); returns
    use the RAS and indirect jumps/calls use the IBTB.
    """

    COND_DIRECT = "cond_direct"
    UNCOND_DIRECT = "uncond_direct"
    CALL_DIRECT = "call_direct"
    CALL_INDIRECT = "call_indirect"
    JUMP_INDIRECT = "jump_indirect"
    RETURN = "return"

    @property
    def is_direct(self) -> bool:
        """True for branches whose target is encoded in the instruction."""
        return self in _DIRECT_KINDS

    @property
    def is_conditional(self) -> bool:
        return self is BranchKind.COND_DIRECT

    @property
    def is_unconditional(self) -> bool:
        return not self.is_conditional

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        return self is BranchKind.RETURN

    @property
    def is_indirect(self) -> bool:
        return self in (BranchKind.CALL_INDIRECT, BranchKind.JUMP_INDIRECT)

    @property
    def uses_btb(self) -> bool:
        """True for kinds whose targets live in the main BTB."""
        return self.is_direct


_DIRECT_KINDS = frozenset(
    {BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT, BranchKind.CALL_DIRECT}
)


@dataclass(frozen=True)
class Branch:
    """A static branch instruction.

    ``pc`` is the branch instruction's address. ``target`` is the taken
    target for direct branches and the *dominant* target for indirect
    branches (indirect branches additionally carry ``alt_targets`` from
    which the trace walker samples). ``fallthrough`` is the address of
    the next sequential instruction (None for blocks that end a
    function and never fall through).
    """

    pc: int
    kind: BranchKind
    target: int
    fallthrough: Optional[int] = None
    # Additional observable targets for indirect branches.
    alt_targets: Tuple[int, ...] = field(default=())
    # Probability that a conditional branch is taken (static bias used by
    # the trace walker; the direction predictor sees the realized stream).
    taken_bias: float = 1.0

    def __post_init__(self) -> None:
        if self.pc < 0 or self.target < 0:
            raise ValueError("branch pc and target must be non-negative addresses")
        if self.kind.is_conditional and self.fallthrough is None:
            raise ValueError("conditional branches must have a fallthrough address")
        if not 0.0 <= self.taken_bias <= 1.0:
            raise ValueError("taken_bias must be a probability")

    @property
    def is_direct(self) -> bool:
        return self.kind.is_direct

    def target_offset(self) -> int:
        """Signed displacement from branch PC to taken target."""
        return self.target - self.pc


def offset_fits(offset: int, bits: int) -> bool:
    """Return True if *offset* fits in a ``bits``-wide signed integer.

    This is the encodability predicate behind Figs 14/15: Twig stores
    prefetch operands as signed deltas rather than 48-bit pointers.
    """
    if bits <= 0:
        return False
    limit = 1 << (bits - 1)
    return -limit <= offset < limit


def bits_for_offset(offset: int) -> int:
    """Minimum signed-integer width that can encode *offset*."""
    if offset >= 0:
        return offset.bit_length() + 1
    return (-offset - 1).bit_length() + 1
