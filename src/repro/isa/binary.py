"""The Binary: an indexed collection of basic blocks.

A :class:`Binary` is the static view of a program that both the
workload generator and the simulator share.  It provides the lookups a
hardware predecoder would perform (branches per cache line, used by the
Shotgun and Confluence models) and the lookups Twig's link-time pass
performs (block containing an address, branch at a PC).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .blocks import BasicBlock, DEFAULT_LINE_BYTES
from .branches import Branch, BranchKind


class Binary:
    """Immutable container of a program's basic blocks.

    Blocks must be non-overlapping; they are indexed by block index,
    start address, branch PC, and cache line.
    """

    def __init__(self, blocks: Sequence[BasicBlock], line_bytes: int = DEFAULT_LINE_BYTES):
        if not blocks:
            raise WorkloadError("a binary must contain at least one basic block")
        self._blocks: Tuple[BasicBlock, ...] = tuple(
            sorted(blocks, key=lambda b: b.start)
        )
        self._line_bytes = line_bytes
        self._starts: List[int] = [b.start for b in self._blocks]
        self._by_start: Dict[int, BasicBlock] = {}
        self._branch_by_pc: Dict[int, Branch] = {}
        self._lines_to_branches: Dict[int, List[Branch]] = {}

        prev_end = -1
        for block in self._blocks:
            if block.start < prev_end:
                raise WorkloadError(
                    f"overlapping basic blocks at {block.start:#x} (previous ends {prev_end:#x})"
                )
            prev_end = block.end
            self._by_start[block.start] = block
            branch = block.branch
            if branch is not None:
                if branch.pc in self._branch_by_pc:
                    raise WorkloadError(f"duplicate branch pc {branch.pc:#x}")
                self._branch_by_pc[branch.pc] = branch
                self._lines_to_branches.setdefault(
                    branch.pc // line_bytes, []
                ).append(branch)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> BasicBlock:
        return self._blocks[index]

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    @property
    def blocks(self) -> Tuple[BasicBlock, ...]:
        return self._blocks

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def block_at(self, start: int) -> BasicBlock:
        """Block whose first instruction is *start* (raises KeyError)."""
        return self._by_start[start]

    def block_containing(self, addr: int) -> Optional[BasicBlock]:
        """Block whose byte range contains *addr*, or None."""
        pos = bisect_right(self._starts, addr) - 1
        if pos < 0:
            return None
        block = self._blocks[pos]
        return block if block.contains(addr) else None

    def branch_at(self, pc: int) -> Optional[Branch]:
        """The branch instruction at *pc*, or None."""
        return self._branch_by_pc.get(pc)

    def branches(self) -> Iterator[Branch]:
        """All static branches, in ascending PC order."""
        for block in self._blocks:
            if block.branch is not None:
                yield block.branch

    def branches_in_line(self, line: int) -> Sequence[Branch]:
        """Predecode: every branch whose PC falls in cache line *line*."""
        return tuple(self._lines_to_branches.get(line, ()))

    def branches_in_lines(self, lines: Iterable[int]) -> List[Branch]:
        """Predecode a set of cache lines (order follows *lines*)."""
        found: List[Branch] = []
        for line in lines:
            found.extend(self._lines_to_branches.get(line, ()))
        return found

    # ------------------------------------------------------------------
    # Static statistics
    # ------------------------------------------------------------------
    def static_branch_count(self, kind: Optional[BranchKind] = None) -> int:
        """Number of static branches, optionally of a single kind."""
        if kind is None:
            return len(self._branch_by_pc)
        return sum(1 for b in self._branch_by_pc.values() if b.kind is kind)

    def text_bytes(self) -> int:
        """Total byte footprint of all blocks (the text segment size)."""
        return sum(b.size_bytes for b in self._blocks)

    def total_instructions(self) -> int:
        """Total static instruction count."""
        return sum(b.instructions for b in self._blocks)

    def address_span(self) -> Tuple[int, int]:
        """(lowest block start, highest block end)."""
        return self._blocks[0].start, self._blocks[-1].end
