"""Cycle-semantics tests on hand-built micro-workloads.

These construct minimal Workload/Trace pairs by hand so the expected
timing behaviour can be reasoned about exactly: resteer costs, flush
costs, FDIP prefetch hiding, FTQ backpressure.
"""

from typing import List

import pytest

from repro.config import SimConfig
from repro.errors import TraceError
from repro.isa.binary import Binary
from repro.isa.blocks import BasicBlock
from repro.isa.branches import Branch, BranchKind
from repro.prefetchers.base import BaselineBTBSystem
from repro.trace.events import Trace, TraceStats
from repro.uarch.sim import simulate
from repro.workloads.cfg import Workload
from tests.conftest import make_tiny_spec


def make_manual_workload(blocks: List[BasicBlock]) -> Workload:
    """Wrap hand-built blocks in a Workload (spec fields are cosmetic)."""
    return Workload(
        spec=make_tiny_spec(name="manual"),
        binary=Binary(blocks),
        functions=(),
        handler_indices=(0,),
        handler_weights=(1.0,),
        root_function=0,
        build_seed=0,
    )


def straightline_loop(n_blocks: int = 8, size: int = 32) -> Workload:
    """N blocks in sequence; the last jumps back to the first."""
    blocks = []
    for i in range(n_blocks):
        start = 0x1000 + i * size
        branch = None
        if i == n_blocks - 1:
            branch = Branch(
                pc=start + size - 4,
                kind=BranchKind.UNCOND_DIRECT,
                target=0x1000,
            )
        blocks.append(
            BasicBlock(
                index=i, start=start, size_bytes=size, instructions=4, branch=branch
            )
        )
    return make_manual_workload(blocks)


def loop_trace(workload: Workload, laps: int) -> Trace:
    n = workload.n_blocks
    blocks, takens = [], []
    for _ in range(laps):
        for i in range(n):
            blocks.append(i)
            takens.append(1 if i == n - 1 else 0)
    stats = TraceStats(
        instructions=sum(workload.block_instructions[b] for b in blocks),
        fetch_units=len(blocks),
        dynamic_branches=laps,
        taken_branches=laps,
    )
    return Trace(blocks, takens, stats, label="manual")


class TestSteadyStateLoop:
    def test_loop_reaches_one_unit_per_cycle(self):
        wl = straightline_loop()
        tr = loop_trace(wl, laps=200)
        cfg = SimConfig()
        res = simulate(wl, tr, cfg, BaselineBTBSystem(cfg))
        # One BTB miss on the first lap; afterwards ~1 unit/cycle.
        assert res.btb_misses == 1
        cycles_per_unit = res.cycles / len(tr)
        assert cycles_per_unit < 1.4

    def test_single_resteer_costs_about_penalty(self):
        wl = straightline_loop()
        cfg = SimConfig()
        short = simulate(wl, loop_trace(wl, 100), cfg, BaselineBTBSystem(cfg))
        longer = simulate(wl, loop_trace(wl, 101), cfg, BaselineBTBSystem(cfg))
        # Marginal lap cost is just its units (the miss happened lap 1).
        marginal = longer.cycles - short.cycles
        assert marginal <= wl.n_blocks + 2

    def test_ideal_btb_saves_penalty_once(self):
        from dataclasses import replace

        wl = straightline_loop()
        tr = loop_trace(wl, 100)
        cfg = SimConfig()
        base = simulate(wl, tr, cfg, BaselineBTBSystem(cfg))
        ideal = simulate(
            wl, tr, replace(cfg, ideal_btb=True), BaselineBTBSystem(cfg)
        )
        saved = base.cycles - ideal.cycles
        assert 0 < saved <= 3 * cfg.core.btb_miss_penalty + cfg.core.mispredict_penalty


class TestColdCodeStalls:
    def _cold_run(self, n_blocks: int, ftq: int) -> float:
        """Cycles/unit for a long never-repeating block sequence."""
        size = 64  # one line per block
        blocks = [
            BasicBlock(
                index=i,
                start=0x100000 + i * size,
                size_bytes=size,
                instructions=8,
                branch=None,
            )
            for i in range(n_blocks)
        ]
        wl = make_manual_workload(blocks)
        tr = Trace(
            list(range(n_blocks)),
            [0] * n_blocks,
            TraceStats(instructions=8 * n_blocks, fetch_units=n_blocks),
        )
        cfg = SimConfig().with_ftq(ftq)
        res = simulate(wl, tr, cfg, BaselineBTBSystem(cfg))
        return res.cycles / n_blocks

    def test_fdip_pipelines_cold_streaks(self):
        """With a deep FTQ, back-to-back L2 fetches overlap: the cost
        per line approaches 1 cycle, far below the full L2 latency."""
        cpu = self._cold_run(n_blocks=400, ftq=24)
        l2 = SimConfig().memory.l2.hit_latency
        assert cpu < l2 / 2

    def test_shallow_ftq_exposes_latency(self):
        deep = self._cold_run(n_blocks=400, ftq=24)
        shallow = self._cold_run(n_blocks=400, ftq=1)
        assert shallow > deep * 1.5


class TestMispredictCost:
    def test_flush_costs_more_than_resteer(self):
        """A conditional branch with alternating outcomes mispredicts
        until learned; flushes must dominate the clean-loop cost."""
        size = 32
        b0 = BasicBlock(
            index=0,
            start=0x1000,
            size_bytes=size,
            instructions=4,
            branch=Branch(
                pc=0x1000 + size - 4,
                kind=BranchKind.COND_DIRECT,
                target=0x1000 + 2 * size,
                fallthrough=0x1000 + size,
                taken_bias=0.5,
            ),
        )
        b1 = BasicBlock(index=1, start=0x1000 + size, size_bytes=size, instructions=4,
                        branch=Branch(pc=0x1000 + 2 * size - 4,
                                      kind=BranchKind.UNCOND_DIRECT, target=0x1000))
        b2 = BasicBlock(index=2, start=0x1000 + 2 * size, size_bytes=size, instructions=4,
                        branch=Branch(pc=0x1000 + 3 * size - 4,
                                      kind=BranchKind.UNCOND_DIRECT, target=0x1000))
        wl = make_manual_workload([b0, b1, b2])

        import random

        rng = random.Random(9)
        blocks, takens = [], []
        for _ in range(400):
            blocks.append(0)
            if rng.random() < 0.5:  # unlearnable coin flip
                takens.append(1)
                blocks.append(2)
            else:
                takens.append(0)
                blocks.append(1)
            takens.append(1)
        tr = Trace(blocks, takens,
                   TraceStats(instructions=4 * len(blocks), fetch_units=len(blocks)))
        cfg = SimConfig()
        res = simulate(wl, tr, cfg, BaselineBTBSystem(cfg))
        assert res.cond_mispredicts > 50
        assert res.mispredict_cycles > res.resteer_cycles
