"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig01" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_default_sim_mode_does_not_outlive_main(self, monkeypatch):
        # main() installs the fast sweep default via os.environ so
        # pool workers inherit it, but nobody asked for it — it must
        # not leak into whatever the process does next (sanitized
        # serial runs in the same test process, for one).
        import os

        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        assert main(["--list"]) == 0
        assert "REPRO_SIM_MODE" not in os.environ

    def test_explicit_sim_mode_persists_for_workers(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        assert main(["--list", "--sim-mode", "serial"]) == 0
        assert os.environ.get("REPRO_SIM_MODE") == "serial"
        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)

    @pytest.fixture()
    def small_env(self, monkeypatch, tmp_path):
        # Constrain the global runner to something affordable, and keep
        # the on-disk cache inside the test's tmp dir.
        monkeypatch.setenv("REPRO_APPS", "wordpress")
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "80000")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_GLOBAL_RUNNER", None)
        return tmp_path

    def test_runs_small_experiment(self, capsys, small_env):
        assert main(["fig03", "--save"]) == 0
        out = capsys.readouterr().out
        assert "wordpress" in out
        assert "saved:" in out
        assert (small_env / "fig03.json").exists()

    def test_cache_dir_flag_populates_cache(self, capsys, small_env):
        cache_dir = small_env / "explicit-cache"
        assert main(["fig03", "--cache-dir", str(cache_dir)]) == 0
        assert any(cache_dir.glob("*.json"))

    def test_no_cache_flag_writes_nothing(self, capsys, small_env):
        assert main(["fig03", "--no-cache"]) == 0
        assert not (small_env / "cache").exists()

    def test_jobs_flag_matches_serial(self, capsys, small_env):
        assert main(["fig03", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        import repro.experiments.runner as runner_mod

        runner_mod.set_runner(None)
        assert main(["fig03", "--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert parallel_out.splitlines()[:3] == serial_out.splitlines()[:3]

    def test_invalid_jobs_rejected(self, capsys, small_env):
        assert main(["fig03", "--jobs", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_env_knob_rejected(self, capsys, small_env, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "not-a-number")
        assert main(["fig03"]) == 2
        assert "REPRO_TRACE_INSTRUCTIONS" in capsys.readouterr().err


class TestServiceCLI:
    """The `serve` / `service-bench` subcommands."""

    def test_serve_smoke(self, capsys):
        assert main(["serve", "--apps", "wordpress",
                     "--trace-instructions", "6000"]) == 0
        out = capsys.readouterr().out
        assert "parity=OK" in out
        assert "drain clean" in out

    def test_service_bench_overload_sheds_and_drains(self, capsys, tmp_path):
        log = tmp_path / "service.jsonl"
        assert main([
            "service-bench", "--apps", "wordpress",
            "--trace-instructions", "6000",
            "--overload", "--expect-sheds",
            "--telemetry", str(log),
        ]) == 0
        out = capsys.readouterr().out
        assert "parity=OK" in out
        assert "drain clean" in out
        assert log.exists() and log.stat().st_size > 0

    def test_service_bench_rejects_unknown_app(self, capsys):
        assert main(["service-bench", "--apps", "nosuchapp"]) == 2
        assert "unknown app" in capsys.readouterr().err
