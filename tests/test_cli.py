"""The `python -m repro.experiments` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig01" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys, monkeypatch, tmp_path):
        # Constrain the global runner to something affordable.
        monkeypatch.setenv("REPRO_APPS", "wordpress")
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "80000")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_GLOBAL_RUNNER", None)
        assert main(["fig03", "--save"]) == 0
        out = capsys.readouterr().out
        assert "wordpress" in out
        assert "saved:" in out
        assert (tmp_path / "fig03.json").exists()
