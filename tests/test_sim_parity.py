"""Fast-path parity: batched and serial simulation must agree exactly.

The batched run loop (DESIGN.md §12) is only admissible because it is
*provably* the same simulation: every :class:`SimResult` field —
including the float cycle counters — must match the serial reference
counter-for-counter, on every app, system, and warmup split.  These
tests pin that contract, plus the mode-selection semantics around it.
"""

from __future__ import annotations

import dataclasses
import functools
import os
from dataclasses import replace

import pytest

from repro.config import SimConfig, sim_mode_from_env
from repro.core.twig import build_plan
from repro.errors import ConfigError, SimulationError
from repro.prefetchers.base import BaselineBTBSystem
from repro.prefetchers.confluence import ConfluenceBTBSystem, DEFAULT_LINE_CAPACITY
from repro.prefetchers.shotgun import ShotgunBTBSystem
from repro.profiling.collector import collect_profile
from repro.trace.walker import generate_trace
from repro.uarch.results import SimResult
from repro.uarch.sim import SIM_MODES, FrontendSimulator
from repro.validate.fuzz import fuzz_config, fuzz_spec
from repro.validate.parity import assert_results_identical, result_diffs
from repro.workloads.apps import app_names, get_app
from repro.workloads.cfg import build_workload
from repro.workloads.rng import make_rng

SYSTEMS = ("baseline", "ideal_btb", "ideal_icache", "shotgun", "confluence", "twig")

# Small-but-real traces: long enough that every system sees BTB misses,
# mispredictions, prefetch ops, and warmup resets on the fast path.
FAST_APPS = ("wordpress", "drupal", "verilator")
FAST_INSTRUCTIONS = 25_000


def _make_system(workload, cfg, system, plan):
    """Mirror ExperimentRunner._simulate's per-system construction."""
    scale = cfg.frontend.btb.entries / 8192
    if system == "shotgun":
        return ShotgunBTBSystem(
            workload,
            cfg,
            ubtb_entries=max(320, int(5120 * scale)),
            cbtb_entries=max(96, int(1536 * scale)),
        )
    if system == "confluence":
        return ConfluenceBTBSystem(
            workload, cfg, line_capacity=max(128, int(DEFAULT_LINE_CAPACITY * scale))
        )
    btb_system = BaselineBTBSystem(cfg)
    if system == "twig":
        btb_system.install_ops(plan.sim_ops())
    return btb_system


def _config_for(system: str) -> SimConfig:
    cfg = SimConfig()
    if system == "ideal_btb":
        return replace(cfg, ideal_btb=True)
    if system == "ideal_icache":
        return replace(cfg, ideal_icache=True)
    return cfg


@functools.lru_cache(maxsize=None)
def _app_fixture(app: str, instructions: int):
    workload = build_workload(get_app(app), seed=0)
    trace = generate_trace(
        workload, workload.spec.make_input(1), max_instructions=instructions
    )
    profile_trace = generate_trace(
        workload, workload.spec.make_input(0), max_instructions=instructions
    )
    cfg = SimConfig()
    plan = build_plan(workload, collect_profile(workload, profile_trace, cfg), cfg)
    return workload, trace, plan


def _assert_parity(workload, trace, plan, system: str, warmup: int) -> None:
    cfg = _config_for(system)
    serial = FrontendSimulator(
        workload,
        config=replace(cfg, sanitize=True),
        btb_system=_make_system(workload, cfg, system, plan),
    ).run(trace, warmup_units=warmup, mode="serial")
    fast = FrontendSimulator(
        workload, config=cfg, btb_system=_make_system(workload, cfg, system, plan)
    ).run(trace, warmup_units=warmup, mode="fast")
    assert_results_identical(
        serial, fast, context=f"{workload.name}/{system} warmup={warmup}"
    )


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("app", FAST_APPS)
def test_fast_matches_sanitized_serial(app, system):
    workload, trace, plan = _app_fixture(app, FAST_INSTRUCTIONS)
    for warmup in (0, len(trace) // 3):
        _assert_parity(workload, trace, plan, system, warmup)


@pytest.mark.slow
@pytest.mark.parametrize("app", sorted(app_names()))
def test_fast_matches_serial_all_apps(app):
    workload, trace, plan = _app_fixture(app, 60_000)
    for system in SYSTEMS:
        for warmup in (0, len(trace) // 3):
            _assert_parity(workload, trace, plan, system, warmup)


class TestFuzzCorpusParity:
    """Randomized mini-workloads with tiny, eviction-heavy geometries."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_geometry_parity(self, seed):
        rng = make_rng("test-sim-parity", seed)
        spec = fuzz_spec(seed, rng)
        cfg = replace(fuzz_config(rng), sanitize=False)
        workload = build_workload(spec, seed=seed)
        trace = generate_trace(
            workload, spec.make_input(rng.randrange(4)), max_instructions=4000
        )
        for warmup in (0, len(trace) // 3):
            serial = FrontendSimulator(
                workload, config=replace(cfg, sanitize=True)
            ).run(trace, warmup_units=warmup, mode="serial")
            fast = FrontendSimulator(workload, config=cfg).run(
                trace, warmup_units=warmup, mode="fast"
            )
            assert_results_identical(
                serial, fast, context=f"fuzz seed={seed} warmup={warmup}"
            )

    def test_generic_tage_sweep_parity(self):
        """A non-default table count exercises the generic TAGE sweep."""
        rng = make_rng("test-sim-parity", "generic")
        spec = fuzz_spec(991, rng)
        frontend = replace(SimConfig().frontend, tage_tables=3)
        cfg = replace(SimConfig(), frontend=frontend)
        workload = build_workload(spec, seed=991)
        trace = generate_trace(workload, spec.make_input(0), max_instructions=6000)
        serial = FrontendSimulator(
            workload, config=replace(cfg, sanitize=True)
        ).run(trace, mode="serial")
        fast = FrontendSimulator(workload, config=cfg).run(trace, mode="fast")
        assert_results_identical(serial, fast, context="tage_tables=3")


class TestResultDiffs:
    """The parity checker itself must cover every SimResult field."""

    # Field inventory pin: adding a counter to SimResult forces this
    # test (and the mutation sweep below) to acknowledge it, so a new
    # counter can never silently escape the parity guarantee.
    EXPECTED_FIELDS = {
        "label",
        "instructions",
        "cycles",
        "btb_accesses",
        "btb_misses",
        "btb_covered_misses",
        "btb_accesses_by_kind",
        "btb_misses_by_kind",
        "cond_mispredicts",
        "indirect_mispredicts",
        "ras_mispredicts",
        "prefetches_issued",
        "prefetches_used",
        "prefetch_ops_executed",
        "fetch_stall_cycles",
        "resteer_cycles",
        "mispredict_cycles",
        "icache_demand_misses",
        "extra_dynamic_instructions",
    }

    def test_field_inventory_pinned(self):
        assert {f.name for f in dataclasses.fields(SimResult)} == self.EXPECTED_FIELDS

    def test_every_field_mutation_detected(self, tiny_workload, tiny_trace):
        cfg = SimConfig()
        base = FrontendSimulator(workload=tiny_workload, config=cfg).run(
            tiny_trace, mode="serial"
        )
        assert result_diffs(base, base) == []
        for field in dataclasses.fields(SimResult):
            value = getattr(base, field.name)
            if isinstance(value, str):
                mutated = value + "-x"
            elif isinstance(value, dict):
                mutated = dict(value)
                mutated["__mutant__"] = 1
            else:
                mutated = value + 1
            perturbed = replace(base, **{field.name: mutated})
            diffs = result_diffs(base, perturbed)
            assert [name for name, _, _ in diffs] == [field.name]


class TestModeSemantics:
    def test_sim_modes_inventory(self):
        assert SIM_MODES == ("auto", "fast", "serial")

    def test_fast_mode_refuses_sanitizer(self, tiny_workload, tiny_trace):
        cfg = replace(SimConfig(), sanitize=True)
        sim = FrontendSimulator(tiny_workload, config=cfg)
        with pytest.raises(SimulationError, match="sanitiz"):
            sim.run(tiny_trace, mode="fast")

    def test_fast_mode_refuses_warm_predictor(self, tiny_workload, tiny_trace):
        sim = FrontendSimulator(tiny_workload, config=SimConfig())
        sim.run(tiny_trace, mode="serial")
        with pytest.raises(SimulationError):
            sim.run(tiny_trace, mode="fast")

    def test_auto_falls_back_to_serial(self, tiny_workload, tiny_trace):
        cfg = replace(SimConfig(), sanitize=True)
        auto = FrontendSimulator(tiny_workload, config=cfg).run(
            tiny_trace, mode="auto"
        )
        serial = FrontendSimulator(tiny_workload, config=cfg).run(
            tiny_trace, mode="serial"
        )
        assert result_diffs(serial, auto) == []

    def test_unknown_mode_rejected(self, tiny_workload, tiny_trace):
        sim = FrontendSimulator(tiny_workload, config=SimConfig())
        with pytest.raises(SimulationError, match="mode"):
            sim.run(tiny_trace, mode="vectorized")

    def test_env_mode_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        assert sim_mode_from_env() == "auto"
        for mode in ("auto", "fast", "serial"):
            monkeypatch.setenv("REPRO_SIM_MODE", mode)
            assert sim_mode_from_env() == mode
        monkeypatch.setenv("REPRO_SIM_MODE", "warp-speed")
        with pytest.raises(ConfigError):
            sim_mode_from_env()

    def test_env_mode_reaches_simulator(self, tiny_workload, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MODE", "serial")
        assert FrontendSimulator(tiny_workload, config=SimConfig()).mode == "serial"


class TestSweepGoldenMetrics:
    """The default experiment sweep now runs on the fast path; the
    runner-level golden metrics (speedups, MPKI reductions) must be
    bit-identical to a serial sweep — this is the CI assertion behind
    flipping the default."""

    @staticmethod
    def _runner(monkeypatch, mode):
        from repro.experiments.runner import ExperimentRunner, RunnerSettings

        monkeypatch.setenv("REPRO_SIM_MODE", mode)
        settings = RunnerSettings(
            trace_instructions=20_000, apps=("wordpress",), sample_rate=1
        )
        return ExperimentRunner(settings, cache=None, jobs=1)

    def test_golden_metrics_fast_equals_serial(self, monkeypatch):
        metrics = {}
        for mode in ("fast", "serial"):
            runner = self._runner(monkeypatch, mode)
            metrics[mode] = {
                "twig_result": runner.run("wordpress", "twig"),
                "speedup": runner.speedup("wordpress", "twig"),
                "miss_reduction": runner.miss_reduction("wordpress", "twig"),
            }
        assert_results_identical(
            metrics["serial"]["twig_result"],
            metrics["fast"]["twig_result"],
            context="wordpress/twig sweep (fast default vs serial opt-out)",
        )
        assert metrics["fast"]["speedup"] == metrics["serial"]["speedup"]
        assert (
            metrics["fast"]["miss_reduction"]
            == metrics["serial"]["miss_reduction"]
        )

    def test_default_sweep_env_is_fast(self, monkeypatch):
        """The CLI installs fast as the sweep default (serial opt-out,
        auto under sanitize), without clobbering an explicit env.  The
        default lives only for the run — workers inherit it via the
        environment, but it is popped before main() returns so it
        cannot leak into in-process callers."""
        import repro.experiments.__main__ as cli

        seen = {}
        real_run = cli._run

        def spy(args):
            seen["mode"] = os.environ.get("REPRO_SIM_MODE")
            return real_run(args)

        monkeypatch.setattr(cli, "_run", spy)

        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert cli.main(["--list"]) == 0
        assert seen["mode"] == "fast"
        assert "REPRO_SIM_MODE" not in os.environ

        monkeypatch.setenv("REPRO_SIM_MODE", "serial")
        assert cli.main(["--list"]) == 0
        assert seen["mode"] == "serial"
        assert os.environ["REPRO_SIM_MODE"] == "serial"

        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert cli.main(["--list"]) == 0
        assert seen["mode"] == "auto"
        assert "REPRO_SIM_MODE" not in os.environ
