"""Configuration validation and sweep helpers."""

import pytest
from dataclasses import FrozenInstanceError

from repro.config import (
    BTBConfig,
    CacheConfig,
    CoreConfig,
    FrontendConfig,
    MemoryConfig,
    SimConfig,
    TwigConfig,
    default_sweep_sim_mode,
    drift_canary_fraction_from_env,
    drift_canary_from_env,
    drift_threshold_from_env,
    drift_window_from_env,
    drift_windows_from_env,
    fleet_autoscale_from_env,
    fleet_replicas_from_env,
    fleet_workers_from_env,
    is_power_of_two,
    service_deadline_ms_from_env,
    service_fsync_from_env,
    service_http_host_from_env,
    service_http_port_from_env,
    service_journal_from_env,
    service_queue_depth_from_env,
    service_reservoir_from_env,
    service_snapshot_dir_from_env,
    service_snapshot_every_from_env,
)
from repro.errors import ConfigError


class TestBTBConfig:
    def test_default_matches_table1(self):
        btb = BTBConfig()
        assert btb.entries == 8192
        assert btb.ways == 4
        assert btb.sets == 2048

    def test_storage_budget_roughly_75kb(self):
        assert 70 <= BTBConfig().storage_kb <= 80

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=0)

    def test_rejects_non_divisible_ways(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=100, ways=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=24, ways=2)  # 12 sets

    def test_fully_associative_geometry(self):
        btb = BTBConfig(entries=64, ways=64)
        assert btb.sets == 1

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            BTBConfig().entries = 1  # type: ignore[misc]


class TestCacheConfig:
    def test_l1i_default_sets(self):
        c = CacheConfig(size_bytes=32 * 1024, ways=8)
        assert c.sets == 64

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, ways=2, line_bytes=48)

    def test_rejects_size_not_multiple(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=2)


class TestTwigConfig:
    def test_defaults_match_paper(self):
        t = TwigConfig()
        assert t.prefetch_distance == 20
        assert t.offset_bits == 12
        assert t.coalesce_bits == 8

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigError):
            TwigConfig(prefetch_distance=-1)

    def test_rejects_wide_offsets(self):
        with pytest.raises(ConfigError):
            TwigConfig(offset_bits=64)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigError):
            TwigConfig(min_confidence=1.5)


class TestSimConfig:
    def test_with_btb_resizes_only_btb(self):
        cfg = SimConfig().with_btb(entries=2048)
        assert cfg.frontend.btb.entries == 2048
        assert cfg.frontend.btb.ways == 4
        assert cfg.frontend.ftq_size == SimConfig().frontend.ftq_size

    def test_with_btb_changes_ways(self):
        cfg = SimConfig().with_btb(ways=128)
        assert cfg.frontend.btb.ways == 128
        assert cfg.frontend.btb.entries == 8192

    def test_with_ftq(self):
        assert SimConfig().with_ftq(64).frontend.ftq_size == 64

    def test_with_prefetch_buffer(self):
        assert SimConfig().with_prefetch_buffer(8).frontend.prefetch_buffer_entries == 8

    def test_with_twig(self):
        cfg = SimConfig().with_twig(prefetch_distance=35, coalesce_bits=16)
        assert cfg.twig.prefetch_distance == 35
        assert cfg.twig.coalesce_bits == 16

    def test_original_unmodified_by_with_helpers(self):
        base = SimConfig()
        base.with_btb(entries=2048)
        assert base.frontend.btb.entries == 8192

    def test_core_defaults(self):
        core = CoreConfig()
        assert core.width == 6
        assert core.rob_entries == 224

    def test_memory_latencies_ordered(self):
        m = MemoryConfig()
        assert m.l1i.hit_latency < m.l2.hit_latency < m.l3.hit_latency < m.memory_latency


class TestHelpers:
    @pytest.mark.parametrize("v,expected", [(1, True), (2, True), (1024, True),
                                            (0, False), (3, False), (-4, False)])
    def test_is_power_of_two(self, v, expected):
        assert is_power_of_two(v) is expected


class TestServiceKnobs:
    """Typed env knobs for the continuous-profiling plan service."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        for name in (
            "REPRO_SERVICE_QUEUE_DEPTH",
            "REPRO_SERVICE_DEADLINE_MS",
            "REPRO_SERVICE_RESERVOIR",
        ):
            monkeypatch.delenv(name, raising=False)
        return monkeypatch

    def test_defaults(self):
        assert service_queue_depth_from_env() == 64
        assert service_deadline_ms_from_env() == 2000
        assert service_reservoir_from_env() == 8192

    def test_valid_values(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_QUEUE_DEPTH", "8")
        clean_env.setenv("REPRO_SERVICE_DEADLINE_MS", "500")
        clean_env.setenv("REPRO_SERVICE_RESERVOIR", "1024")
        assert service_queue_depth_from_env() == 8
        assert service_deadline_ms_from_env() == 500
        assert service_reservoir_from_env() == 1024

    @pytest.mark.parametrize(
        "name,reader",
        [
            ("REPRO_SERVICE_QUEUE_DEPTH", service_queue_depth_from_env),
            ("REPRO_SERVICE_DEADLINE_MS", service_deadline_ms_from_env),
            ("REPRO_SERVICE_RESERVOIR", service_reservoir_from_env),
        ],
    )
    @pytest.mark.parametrize("bad", ["0", "-5", "lots", "1.5"])
    def test_invalid_rejected(self, clean_env, name, reader, bad):
        clean_env.setenv(name, bad)
        with pytest.raises(ConfigError, match=name):
            reader()

    def test_service_config_defaults_read_env(self, clean_env):
        from repro.service.server import ServiceConfig

        clean_env.setenv("REPRO_SERVICE_QUEUE_DEPTH", "3")
        clean_env.setenv("REPRO_SERVICE_DEADLINE_MS", "123")
        clean_env.setenv("REPRO_SERVICE_RESERVOIR", "77")
        cfg = ServiceConfig()
        assert cfg.queue_depth == 3
        assert cfg.deadline_ms == 123
        assert cfg.reservoir_capacity == 77


class TestDurabilityKnobs:
    """Env knobs for the durability layer and the HTTP transport."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        for name in (
            "REPRO_SERVICE_SNAPSHOT_DIR",
            "REPRO_SERVICE_SNAPSHOT_EVERY",
            "REPRO_SERVICE_JOURNAL",
            "REPRO_SERVICE_FSYNC",
            "REPRO_SERVICE_HTTP_HOST",
            "REPRO_SERVICE_HTTP_PORT",
        ):
            monkeypatch.delenv(name, raising=False)
        return monkeypatch

    def test_defaults(self):
        assert service_snapshot_dir_from_env() is None
        assert service_snapshot_every_from_env() == 16
        assert service_journal_from_env() is None
        assert service_fsync_from_env() is False
        assert service_http_host_from_env() == "127.0.0.1"
        assert service_http_port_from_env() == 0

    def test_paths_pass_through(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_DIR", "/tmp/snaps")
        clean_env.setenv("REPRO_SERVICE_JOURNAL", "/tmp/wal.jsonl")
        assert service_snapshot_dir_from_env() == "/tmp/snaps"
        assert service_journal_from_env() == "/tmp/wal.jsonl"

    def test_blank_paths_mean_disabled(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_DIR", "   ")
        clean_env.setenv("REPRO_SERVICE_JOURNAL", "")
        assert service_snapshot_dir_from_env() is None
        assert service_journal_from_env() is None

    def test_snapshot_cadence(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_EVERY", "4")
        assert service_snapshot_every_from_env() == 4
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_EVERY", "0")
        with pytest.raises(ConfigError, match="SNAPSHOT_EVERY"):
            service_snapshot_every_from_env()

    @pytest.mark.parametrize(
        "raw,expected", [("1", True), ("yes", True), ("0", False), ("off", False)]
    )
    def test_fsync_flag(self, clean_env, raw, expected):
        clean_env.setenv("REPRO_SERVICE_FSYNC", raw)
        assert service_fsync_from_env() is expected

    def test_fsync_garbage_rejected(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_FSYNC", "maybe")
        with pytest.raises(ConfigError, match="FSYNC"):
            service_fsync_from_env()

    def test_http_host(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_HTTP_HOST", "0.0.0.0")
        assert service_http_host_from_env() == "0.0.0.0"

    def test_http_port_accepts_zero_and_range(self, clean_env):
        clean_env.setenv("REPRO_SERVICE_HTTP_PORT", "0")
        assert service_http_port_from_env() == 0
        clean_env.setenv("REPRO_SERVICE_HTTP_PORT", "8080")
        assert service_http_port_from_env() == 8080
        for bad in ("-1", "65536", "http"):
            clean_env.setenv("REPRO_SERVICE_HTTP_PORT", bad)
            with pytest.raises(ConfigError, match="HTTP_PORT"):
                service_http_port_from_env()

    def test_service_config_reads_durability_env(self, clean_env, tmp_path):
        from repro.service.server import ServiceConfig

        clean_env.setenv("REPRO_SERVICE_JOURNAL", str(tmp_path / "wal.jsonl"))
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_DIR", str(tmp_path / "snaps"))
        clean_env.setenv("REPRO_SERVICE_SNAPSHOT_EVERY", "7")
        clean_env.setenv("REPRO_SERVICE_FSYNC", "1")
        cfg = ServiceConfig()
        assert cfg.journal_path == str(tmp_path / "wal.jsonl")
        assert cfg.snapshot_dir == str(tmp_path / "snaps")
        assert cfg.snapshot_every == 7
        assert cfg.fsync is True


class TestFleetKnobs:
    """Typed env knobs for the sharded multi-process fleet."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        for name in (
            "REPRO_FLEET_WORKERS",
            "REPRO_FLEET_REPLICAS",
            "REPRO_FLEET_AUTOSCALE",
        ):
            monkeypatch.delenv(name, raising=False)
        return monkeypatch

    def test_defaults(self):
        assert fleet_workers_from_env() == 2
        assert fleet_replicas_from_env() == 1
        assert fleet_autoscale_from_env() is False

    def test_valid_values(self, clean_env):
        clean_env.setenv("REPRO_FLEET_WORKERS", "4")
        clean_env.setenv("REPRO_FLEET_REPLICAS", "2")
        clean_env.setenv("REPRO_FLEET_AUTOSCALE", "yes")
        assert fleet_workers_from_env() == 4
        assert fleet_replicas_from_env() == 2
        assert fleet_autoscale_from_env() is True

    @pytest.mark.parametrize(
        "name,reader",
        [
            ("REPRO_FLEET_WORKERS", fleet_workers_from_env),
            ("REPRO_FLEET_REPLICAS", fleet_replicas_from_env),
        ],
    )
    @pytest.mark.parametrize("bad", ["0", "-5", "lots", "1.5"])
    def test_invalid_ints_rejected(self, clean_env, name, reader, bad):
        clean_env.setenv(name, bad)
        with pytest.raises(ConfigError, match=name):
            reader()

    @pytest.mark.parametrize("bad", ["maybe", "2", "yep"])
    def test_invalid_autoscale_flag_rejected(self, clean_env, bad):
        clean_env.setenv("REPRO_FLEET_AUTOSCALE", bad)
        with pytest.raises(ConfigError, match="REPRO_FLEET_AUTOSCALE"):
            fleet_autoscale_from_env()

    def test_fleet_config_defaults_read_env(self, clean_env):
        from repro.service.fleet import FleetConfig

        clean_env.setenv("REPRO_FLEET_WORKERS", "3")
        clean_env.setenv("REPRO_FLEET_REPLICAS", "2")
        clean_env.setenv("REPRO_FLEET_AUTOSCALE", "on")
        cfg = FleetConfig()
        assert cfg.workers == 3
        assert cfg.replicas == 2
        assert cfg.autoscale is True


class TestDriftKnobs:
    """Typed env knobs for the drift engine's canary controller."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        for name in (
            "REPRO_DRIFT_CANARY",
            "REPRO_DRIFT_CANARY_FRACTION",
            "REPRO_DRIFT_WINDOW",
            "REPRO_DRIFT_WINDOWS",
            "REPRO_DRIFT_THRESHOLD",
        ):
            monkeypatch.delenv(name, raising=False)
        return monkeypatch

    def test_defaults(self):
        # Canarying is opt-in: the default service behaviour (activate
        # every build immediately) is what the parity suites pin.
        assert drift_canary_from_env() is False
        assert drift_canary_fraction_from_env() == 0.5
        assert drift_window_from_env() == 64
        assert drift_windows_from_env() == 2
        assert drift_threshold_from_env() == 0.1

    def test_valid_values(self, clean_env):
        clean_env.setenv("REPRO_DRIFT_CANARY", "yes")
        clean_env.setenv("REPRO_DRIFT_CANARY_FRACTION", "0.25")
        clean_env.setenv("REPRO_DRIFT_WINDOW", "16")
        clean_env.setenv("REPRO_DRIFT_WINDOWS", "3")
        clean_env.setenv("REPRO_DRIFT_THRESHOLD", "0.05")
        assert drift_canary_from_env() is True
        assert drift_canary_fraction_from_env() == 0.25
        assert drift_window_from_env() == 16
        assert drift_windows_from_env() == 3
        assert drift_threshold_from_env() == 0.05

    @pytest.mark.parametrize(
        "name,reader,bad",
        [
            ("REPRO_DRIFT_CANARY", drift_canary_from_env, "maybe"),
            # Fraction must leave both arms observable: [0.01, 0.99].
            ("REPRO_DRIFT_CANARY_FRACTION", drift_canary_fraction_from_env, "0"),
            ("REPRO_DRIFT_CANARY_FRACTION", drift_canary_fraction_from_env, "1"),
            ("REPRO_DRIFT_CANARY_FRACTION", drift_canary_fraction_from_env, "lots"),
            ("REPRO_DRIFT_WINDOW", drift_window_from_env, "0"),
            ("REPRO_DRIFT_WINDOW", drift_window_from_env, "1.5"),
            ("REPRO_DRIFT_WINDOWS", drift_windows_from_env, "-1"),
            ("REPRO_DRIFT_THRESHOLD", drift_threshold_from_env, "1.5"),
            ("REPRO_DRIFT_THRESHOLD", drift_threshold_from_env, "-0.1"),
        ],
    )
    def test_invalid_rejected(self, clean_env, name, reader, bad):
        clean_env.setenv(name, bad)
        with pytest.raises(ConfigError, match=name):
            reader()

    def test_canary_settings_defaults_read_env(self, clean_env):
        from repro.drift.canary import CanarySettings

        clean_env.setenv("REPRO_DRIFT_CANARY", "1")
        clean_env.setenv("REPRO_DRIFT_CANARY_FRACTION", "0.3")
        clean_env.setenv("REPRO_DRIFT_WINDOW", "8")
        clean_env.setenv("REPRO_DRIFT_WINDOWS", "4")
        clean_env.setenv("REPRO_DRIFT_THRESHOLD", "0.2")
        settings = CanarySettings()
        assert settings.enabled is True
        assert settings.fraction == 0.3
        assert settings.window == 8
        assert settings.windows == 4
        assert settings.threshold == 0.2


class TestSweepSimModeDefault:
    """default_sweep_sim_mode: what `python -m repro.experiments` installs."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_MODE", raising=False)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        return monkeypatch

    def test_default_is_fast(self):
        assert default_sweep_sim_mode() == "fast"

    def test_sanitize_keeps_auto(self, clean_env):
        # The sanitizer is serial-only; auto lets eligible runs batch
        # while sanitized ones keep their serial fallback.
        clean_env.setenv("REPRO_SANITIZE", "1")
        assert default_sweep_sim_mode() == "auto"

    @pytest.mark.parametrize("explicit", ["serial", "fast", "auto"])
    def test_explicit_choice_wins(self, clean_env, explicit):
        clean_env.setenv("REPRO_SIM_MODE", explicit)
        assert default_sweep_sim_mode() is None
