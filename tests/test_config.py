"""Configuration validation and sweep helpers."""

import pytest
from dataclasses import FrozenInstanceError

from repro.config import (
    BTBConfig,
    CacheConfig,
    CoreConfig,
    FrontendConfig,
    MemoryConfig,
    SimConfig,
    TwigConfig,
    is_power_of_two,
)
from repro.errors import ConfigError


class TestBTBConfig:
    def test_default_matches_table1(self):
        btb = BTBConfig()
        assert btb.entries == 8192
        assert btb.ways == 4
        assert btb.sets == 2048

    def test_storage_budget_roughly_75kb(self):
        assert 70 <= BTBConfig().storage_kb <= 80

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=0)

    def test_rejects_non_divisible_ways(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=100, ways=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=24, ways=2)  # 12 sets

    def test_fully_associative_geometry(self):
        btb = BTBConfig(entries=64, ways=64)
        assert btb.sets == 1

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            BTBConfig().entries = 1  # type: ignore[misc]


class TestCacheConfig:
    def test_l1i_default_sets(self):
        c = CacheConfig(size_bytes=32 * 1024, ways=8)
        assert c.sets == 64

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, ways=2, line_bytes=48)

    def test_rejects_size_not_multiple(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=2)


class TestTwigConfig:
    def test_defaults_match_paper(self):
        t = TwigConfig()
        assert t.prefetch_distance == 20
        assert t.offset_bits == 12
        assert t.coalesce_bits == 8

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigError):
            TwigConfig(prefetch_distance=-1)

    def test_rejects_wide_offsets(self):
        with pytest.raises(ConfigError):
            TwigConfig(offset_bits=64)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigError):
            TwigConfig(min_confidence=1.5)


class TestSimConfig:
    def test_with_btb_resizes_only_btb(self):
        cfg = SimConfig().with_btb(entries=2048)
        assert cfg.frontend.btb.entries == 2048
        assert cfg.frontend.btb.ways == 4
        assert cfg.frontend.ftq_size == SimConfig().frontend.ftq_size

    def test_with_btb_changes_ways(self):
        cfg = SimConfig().with_btb(ways=128)
        assert cfg.frontend.btb.ways == 128
        assert cfg.frontend.btb.entries == 8192

    def test_with_ftq(self):
        assert SimConfig().with_ftq(64).frontend.ftq_size == 64

    def test_with_prefetch_buffer(self):
        assert SimConfig().with_prefetch_buffer(8).frontend.prefetch_buffer_entries == 8

    def test_with_twig(self):
        cfg = SimConfig().with_twig(prefetch_distance=35, coalesce_bits=16)
        assert cfg.twig.prefetch_distance == 35
        assert cfg.twig.coalesce_bits == 16

    def test_original_unmodified_by_with_helpers(self):
        base = SimConfig()
        base.with_btb(entries=2048)
        assert base.frontend.btb.entries == 8192

    def test_core_defaults(self):
        core = CoreConfig()
        assert core.width == 6
        assert core.rob_entries == 224

    def test_memory_latencies_ordered(self):
        m = MemoryConfig()
        assert m.l1i.hit_latency < m.l2.hit_latency < m.l3.hit_latency < m.memory_latency


class TestHelpers:
    @pytest.mark.parametrize("v,expected", [(1, True), (2, True), (1024, True),
                                            (0, False), (3, False), (-4, False)])
    def test_is_power_of_two(self, v, expected):
        assert is_power_of_two(v) is expected
