"""Timing simulator: counters, limit studies, warmup, sensitivity."""

from dataclasses import replace

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.prefetchers.base import BaselineBTBSystem
from repro.uarch.sim import FrontendSimulator, simulate


@pytest.fixture(scope="module")
def base_result(tiny_module_workload, tiny_module_trace):
    cfg = SimConfig()
    return simulate(
        tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg)
    )


@pytest.fixture(scope="module")
def tiny_module_workload():
    from repro.workloads.cfg import build_workload
    from tests.conftest import make_tiny_spec

    return build_workload(make_tiny_spec(), seed=7)


@pytest.fixture(scope="module")
def tiny_module_trace(tiny_module_workload):
    from repro.trace.walker import generate_trace

    return generate_trace(
        tiny_module_workload,
        tiny_module_workload.spec.make_input(0),
        max_instructions=60_000,
    )


class TestBasicRun:
    def test_counts_instructions(self, base_result, tiny_module_trace):
        assert base_result.instructions == tiny_module_trace.stats.instructions

    def test_positive_cycles_and_sane_ipc(self, base_result):
        assert base_result.cycles > 0
        assert 0.05 < base_result.ipc() < 6.0

    def test_btb_accesses_match_direct_branches(self, base_result, tiny_module_trace):
        from repro.isa.branches import BranchKind

        s = tiny_module_trace.stats
        direct = sum(
            s.branches_by_kind.get(k, 0)
            for k in (
                BranchKind.COND_DIRECT,
                BranchKind.UNCOND_DIRECT,
                BranchKind.CALL_DIRECT,
            )
        )
        assert base_result.btb_accesses == direct

    def test_miss_breakdown_sums(self, base_result):
        assert sum(base_result.btb_misses_by_kind.values()) == base_result.btb_misses

    def test_frontend_bound_in_unit_interval(self, base_result):
        assert 0.0 <= base_result.frontend_bound() <= 1.0

    def test_no_prefetches_in_baseline(self, base_result):
        assert base_result.prefetches_issued == 0
        assert base_result.prefetch_ops_executed == 0


class TestLimitStudies:
    def test_ideal_btb_removes_all_misses(self, tiny_module_workload, tiny_module_trace):
        cfg = replace(SimConfig(), ideal_btb=True)
        res = simulate(tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg))
        assert res.btb_misses == 0

    def test_ideal_btb_is_faster(self, tiny_module_workload, tiny_module_trace, base_result):
        cfg = replace(SimConfig(), ideal_btb=True)
        res = simulate(tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg))
        assert res.cycles < base_result.cycles

    def test_ideal_icache_removes_fetch_stalls(self, tiny_module_workload, tiny_module_trace):
        cfg = replace(SimConfig(), ideal_icache=True)
        res = simulate(tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg))
        assert res.fetch_stall_cycles == 0

    def test_both_ideal_fastest(self, tiny_module_workload, tiny_module_trace, base_result):
        cfg = replace(SimConfig(), ideal_btb=True, ideal_icache=True)
        res = simulate(tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg))
        assert res.cycles <= base_result.cycles


class TestWarmup:
    def test_warmup_shrinks_counted_window(self, tiny_module_workload, tiny_module_trace):
        cfg = SimConfig()
        sim = FrontendSimulator(tiny_module_workload, cfg, BaselineBTBSystem(cfg))
        warm = sim.run(tiny_module_trace, warmup_units=len(tiny_module_trace) // 2)
        cold = simulate(
            tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg)
        )
        assert warm.instructions < cold.instructions
        assert warm.cycles < cold.cycles

    def test_warmup_lowers_compulsory_miss_rate(self, tiny_module_workload, tiny_module_trace):
        cfg = SimConfig()
        sim = FrontendSimulator(tiny_module_workload, cfg, BaselineBTBSystem(cfg))
        warm = sim.run(tiny_module_trace, warmup_units=len(tiny_module_trace) // 2)
        cold = simulate(
            tiny_module_workload, tiny_module_trace, cfg, BaselineBTBSystem(cfg)
        )
        assert warm.btb_mpki() <= cold.btb_mpki() + 1e-9

    def test_warmup_longer_than_trace_rejected(self, tiny_module_workload, tiny_module_trace):
        cfg = SimConfig()
        sim = FrontendSimulator(tiny_module_workload, cfg, BaselineBTBSystem(cfg))
        with pytest.raises(SimulationError):
            sim.run(tiny_module_trace, warmup_units=len(tiny_module_trace) + 1)

    @pytest.mark.parametrize("mode", ["serial", "fast"])
    def test_warmup_equal_to_trace_rejected_in_both_modes(
        self, tiny_module_workload, tiny_module_trace, mode
    ):
        cfg = SimConfig()
        sim = FrontendSimulator(tiny_module_workload, cfg, BaselineBTBSystem(cfg))
        with pytest.raises(SimulationError, match="warmup"):
            sim.run(tiny_module_trace, warmup_units=len(tiny_module_trace), mode=mode)

    def _parity(self, workload, trace, warmup):
        from repro.validate.parity import assert_results_identical

        cfg = SimConfig()
        serial = FrontendSimulator(workload, cfg, BaselineBTBSystem(cfg)).run(
            trace, warmup_units=warmup, mode="serial"
        )
        fast = FrontendSimulator(workload, cfg, BaselineBTBSystem(cfg)).run(
            trace, warmup_units=warmup, mode="fast"
        )
        assert_results_identical(serial, fast, context=f"warmup={warmup}")

    def test_warmup_of_all_but_one_unit_matches_serial(
        self, tiny_module_workload, tiny_module_trace
    ):
        self._parity(
            tiny_module_workload, tiny_module_trace, len(tiny_module_trace) - 1
        )

    def test_warmup_straddling_first_miss_matches_serial(
        self, tiny_module_workload, tiny_module_trace
    ):
        # The first taken direct branch is a compulsory BTB miss whose
        # resteer stall spans several cycles; warmup boundaries placed
        # just before, on, and just after it must reset the fast path's
        # counters at exactly the same instant as the serial loop's.
        from repro.isa.branches import BranchKind

        kinds = tiny_module_workload.branch_kind
        direct = (
            BranchKind.COND_DIRECT,
            BranchKind.UNCOND_DIRECT,
            BranchKind.CALL_DIRECT,
        )
        first_miss = next(
            i
            for i, (block, taken) in enumerate(tiny_module_trace)
            if taken and kinds[block] in direct
        )
        for warmup in (first_miss - 1, first_miss, first_miss + 1, first_miss + 2):
            if 0 < warmup < len(tiny_module_trace):
                self._parity(tiny_module_workload, tiny_module_trace, warmup)


class TestSensitivityDirections:
    """Directional checks that back the sweep figures."""

    def _run(self, wl, tr, cfg):
        return simulate(wl, tr, cfg, BaselineBTBSystem(cfg))

    def test_smaller_btb_more_misses(self, tiny_module_workload, tiny_module_trace):
        big = self._run(tiny_module_workload, tiny_module_trace, SimConfig())
        small = self._run(
            tiny_module_workload, tiny_module_trace, SimConfig().with_btb(entries=256)
        )
        assert small.btb_misses >= big.btb_misses

    def test_tiny_ftq_hurts(self, tiny_module_workload, tiny_module_trace):
        normal = self._run(tiny_module_workload, tiny_module_trace, SimConfig())
        narrow = self._run(
            tiny_module_workload, tiny_module_trace, SimConfig().with_ftq(1)
        )
        assert narrow.cycles >= normal.cycles

    def test_resteer_penalty_scales_cycles(self, tiny_module_workload, tiny_module_trace):
        from dataclasses import replace as drep

        cheap_cfg = SimConfig()
        dear_core = drep(cheap_cfg.core, btb_miss_penalty=40)
        dear_cfg = drep(cheap_cfg, core=dear_core)
        cheap = self._run(tiny_module_workload, tiny_module_trace, cheap_cfg)
        dear = self._run(tiny_module_workload, tiny_module_trace, dear_cfg)
        if cheap.btb_misses > 0:
            assert dear.cycles > cheap.cycles

    def test_run_deterministic(self, tiny_module_workload, tiny_module_trace):
        cfg = SimConfig()
        a = self._run(tiny_module_workload, tiny_module_trace, cfg)
        b = self._run(tiny_module_workload, tiny_module_trace, cfg)
        assert a.cycles == b.cycles
        assert a.btb_misses == b.btb_misses


class _RecordingBTBSystem(BaselineBTBSystem):
    """Captures every fill/training call the simulator issues."""

    def __init__(self, config):
        super().__init__(config)
        self.filled = []
        self.trained = []

    def fill(self, pc, target, kind_code, now):
        self.filled.append((pc, target))
        super().fill(pc, target, kind_code, now)

    def on_taken_branch(self, pc, target, kind_code, now):
        self.trained.append((pc, target))


class TestFinalUnitBoundary:
    """A trace ending on a taken BTB-missing branch must not fabricate
    a fill/training target of 0 — the final fetch unit has no successor
    block, so there is no real target to report."""

    def _slice_to_first_taken_direct(self, workload, trace):
        from repro.workloads.cfg import DIRECT_KIND_CODES

        kind_code = workload.kind_code
        for i, (blk, taken) in enumerate(zip(trace.blocks, trace.takens)):
            if taken and kind_code[blk] in DIRECT_KIND_CODES:
                return trace.slice(0, i + 1)
        pytest.skip("trace has no taken direct branch")

    def test_no_fabricated_zero_target_on_final_unit(
        self, tiny_module_workload, tiny_module_trace
    ):
        # End the trace at the *first* taken direct branch: the BTB is
        # still cold for that pc, so the final unit's lookup misses.
        short = self._slice_to_first_taken_direct(
            tiny_module_workload, tiny_module_trace
        )
        cfg = SimConfig()
        sysm = _RecordingBTBSystem(cfg)
        res = FrontendSimulator(
            tiny_module_workload, config=cfg, btb_system=sysm
        ).run(short)

        # The miss was counted ...
        assert res.btb_misses >= 1
        # ... but no fill or training hook ever saw target 0.
        assert all(target != 0 for _, target in sysm.filled)
        assert all(target != 0 for _, target in sysm.trained)

    def test_taken_hook_skips_only_the_final_unit(
        self, tiny_module_workload, tiny_module_trace
    ):
        short = tiny_module_trace.slice(0, 200)
        cfg = SimConfig()
        sysm = _RecordingBTBSystem(cfg)
        FrontendSimulator(
            tiny_module_workload, config=cfg, btb_system=sysm
        ).run(short)
        taken_units = sum(short.takens)
        skipped_final = 1 if short.takens[-1] else 0
        assert len(sysm.trained) == taken_units - skipped_final
