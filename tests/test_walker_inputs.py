"""Input perturbation semantics of the walker (Table 2's substrate)."""

import pytest

from repro.trace.walker import (
    _Sampler,
    _perturbed_biases,
    _perturbed_weights,
    generate_trace,
)
from repro.workloads.rng import make_rng


class TestSampler:
    def test_rejects_zero_weights(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            _Sampler(make_rng("x"), [0.0, 0.0])

    def test_draws_in_range(self):
        s = _Sampler(make_rng("x"), [1.0, 2.0, 3.0])
        draws = [s.draw() for _ in range(1000)]
        assert set(draws) <= {0, 1, 2}

    def test_respects_weights_statistically(self):
        s = _Sampler(make_rng("y"), [1.0, 9.0])
        draws = [s.draw() for _ in range(5000)]
        heavy = sum(1 for d in draws if d == 1) / len(draws)
        assert 0.82 < heavy < 0.97

    def test_single_item(self):
        s = _Sampler(make_rng("z"), [5.0])
        assert all(s.draw() == 0 for _ in range(10))


class TestPerturbation:
    def test_input0_weights_unchanged(self, tiny_workload):
        inp = tiny_workload.spec.make_input(0)
        assert _perturbed_weights(tiny_workload, inp) == list(
            tiny_workload.handler_weights
        )

    def test_input1_weights_shifted(self, tiny_workload):
        inp = tiny_workload.spec.make_input(1)
        shifted = _perturbed_weights(tiny_workload, inp)
        assert shifted != list(tiny_workload.handler_weights)
        assert len(shifted) == len(tiny_workload.handler_weights)
        assert all(w > 0 for w in shifted)

    def test_input0_no_bias_overrides(self, tiny_workload):
        assert _perturbed_biases(tiny_workload, tiny_workload.spec.make_input(0)) == {}

    def test_input1_bias_overrides_are_conditionals(self, tiny_workload):
        from repro.isa.branches import BranchKind

        overrides = _perturbed_biases(tiny_workload, tiny_workload.spec.make_input(2))
        assert overrides
        for blk, bias in overrides.items():
            assert tiny_workload.branch_kind[blk] is BranchKind.COND_DIRECT
            assert 0.0 <= bias <= 1.0

    def test_perturbation_deterministic(self, tiny_workload):
        inp = tiny_workload.spec.make_input(3)
        assert _perturbed_biases(tiny_workload, inp) == _perturbed_biases(
            tiny_workload, inp
        )


class TestInputBehaviour:
    def test_inputs_share_most_of_the_footprint(self, tiny_workload):
        """Different inputs overlap heavily (same application!) —
        the property Table 2's cross-input result depends on."""
        a = generate_trace(
            tiny_workload, tiny_workload.spec.make_input(0), max_instructions=50_000
        )
        b = generate_trace(
            tiny_workload, tiny_workload.spec.make_input(1), max_instructions=50_000
        )
        sa, sb = set(a.blocks), set(b.blocks)
        overlap = len(sa & sb) / min(len(sa), len(sb))
        assert overlap > 0.5

    def test_inputs_are_not_identical(self, tiny_workload, tiny_trace, tiny_trace_alt):
        assert tiny_trace.blocks != tiny_trace_alt.blocks
