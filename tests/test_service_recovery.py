"""Crash-recovery property suite: kill-and-restart convergence.

The durability theorem under test (DESIGN.md §14): a plan service
killed at *any* journaled-batch milestone and restarted from its
latest snapshot plus the journal suffix converges to exactly the state
of a run that never crashed — same fold state, hence byte-identical
served plans, same ``PlanVersion`` numbers, and the same ``PlanDiff``
lineage.  Kills land at seeded-random milestones so the suite probes
arbitrary snapshot/WAL interleavings while staying reproducible.

Covers the single-process service (snapshot + WAL restore) and the
sharded fleet (journal resume + replay into fresh workers).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SimConfig
from repro.core.twig import build_plan
from repro.service.bench import _abandon_service, collect_sample_stream
from repro.service.build import plan_sites, plans_equivalent
from repro.service.fleet import FleetConfig, FleetRouter
from repro.service.server import (
    PlanService,
    ServiceConfig,
    default_workload_resolver,
)
from repro.trace.walker import generate_trace
from repro.workloads.rng import make_rng

SIM_CFG = SimConfig()
APPS = ("wordpress", "drupal", "kafka")
BATCH = 48


@pytest.fixture(scope="module")
def app_streams():
    """Offline ground truth for three real apps: label, profile, stream."""
    resolver = default_workload_resolver()
    out = {}
    for app in APPS:
        workload = resolver(app)
        inp = workload.spec.make_input(0)
        trace = generate_trace(workload, inp, max_instructions=6_000)
        profile, stream = collect_sample_stream(workload, trace, SIM_CFG)
        assert stream, f"{app}: no miss samples"
        out[app] = (trace.label, profile, stream)
    return out


def build_schedule(app_streams):
    """Round-robin batch interleave across apps: [(app, label, chunk, seq)]."""
    per_app = {
        app: [s[2][i : i + BATCH] for i in range(0, len(s[2]), BATCH)]
        for app, s in app_streams.items()
    }
    labels = {app: s[0] for app, s in app_streams.items()}
    schedule = []
    seqs = dict.fromkeys(per_app, 0)
    while any(per_app.values()):
        for app in sorted(per_app):
            if per_app[app]:
                chunk = per_app[app].pop(0)
                schedule.append((app, labels[app], chunk, seqs[app]))
                seqs[app] += 1
    return schedule


def lineage_record(version):
    """Everything lineage convergence promises, in comparable form."""
    return (
        version.key,
        version.version,
        version.generation,
        version.samples,
        version.diff,
        plan_sites(version.plan),
        version.plan.table,
    )


def make_service(state_dir: str) -> PlanService:
    return PlanService(
        workload_for=default_workload_resolver(),
        config=ServiceConfig(
            queue_depth=64,
            deadline_ms=60_000,
            reservoir_capacity=1 << 20,
            workers=1,
            # No background rebuilds: builds happen only at the shared
            # get_plan milestones, so both runs publish at identical
            # fold points and the lineage comparison is exact.
            debounce_s=30.0,
            journal_path=f"{state_dir}/journal.jsonl",
            snapshot_dir=f"{state_dir}/snapshots",
            snapshot_every=4,
        ),
        sim_config=SIM_CFG,
        check_plans=True,
    )


async def drive(service, schedule, start, end, milestones, history, seen):
    """Ingest schedule[start:end], recording lineage at milestones."""
    for i in range(start, end):
        app, label, chunk, seq = schedule[i]
        await service.ingest(app, label, chunk, seq=seq)
        seen.add((app, label))
        if (i + 1) in milestones:
            snap = {}
            for key in sorted(seen):
                snap[key[0]] = lineage_record(
                    await service.get_plan(key[0], key[1])
                )
            history.append((i + 1, snap))


class TestSingleServiceRecovery:
    def test_randomized_kill_milestones_converge(
        self, app_streams, tmp_path
    ):
        schedule = build_schedule(app_streams)
        total = len(schedule)
        assert total >= 6, "need enough batches for kills between milestones"
        milestones = {total // 3, (2 * total) // 3, total}
        # Seeded-random kill points, excluding milestone boundaries so
        # every milestone's get_plan runs in both runs.
        rng = make_rng("service-recovery-kills", total)
        candidates = [i for i in range(1, total) if i not in milestones]
        kills = sorted(rng.sample(candidates, min(2, len(candidates))))

        # Uninterrupted baseline (same durability config: snapshots
        # and the WAL never influence fold or build results).
        baseline_history = []

        async def baseline():
            service = make_service(str(tmp_path / "baseline"))
            await service.start()
            await drive(
                service, schedule, 0, total, milestones,
                baseline_history, set(),
            )
            await service.stop()

        asyncio.run(baseline())

        # Interrupted run: one phase per kill, each in its own event
        # loop, abandoned without drain — only the snapshot directory
        # and the journal survive into the next phase.
        state_dir = str(tmp_path / "crashy")
        history = []
        seen = set()
        restore_reports = []
        bounds = [0] + kills + [total]
        for phase_idx in range(len(bounds) - 1):
            start, end = bounds[phase_idx], bounds[phase_idx + 1]

            async def phase(phase_idx=phase_idx, start=start, end=end):
                service = make_service(state_dir)
                if phase_idx > 0:
                    restore_reports.append(service.restore())
                await service.start()
                await drive(
                    service, schedule, start, end, milestones, history, seen
                )
                if end == total:
                    await service.stop()
                else:
                    await _abandon_service(service)

            asyncio.run(phase())

        assert len(restore_reports) == len(kills)
        for report in restore_reports:
            assert report["torn_records"] == 0
            assert report["snapshot_loaded"] or report["batches_replayed"] > 0
        # The theorem: identical milestones, versions, diffs, and plans.
        assert history == baseline_history

    def test_recovered_plan_matches_offline_pipeline(
        self, app_streams, tmp_path
    ):
        """Transitively with the parity suite: restart then offline==online."""
        schedule = build_schedule(app_streams)
        total = len(schedule)
        cut = total // 2
        state_dir = str(tmp_path / "state")

        async def phase1():
            service = make_service(state_dir)
            await service.start()
            await drive(service, schedule, 0, cut, set(), [], set())
            await _abandon_service(service)

        async def phase2():
            service = make_service(state_dir)
            service.restore()
            await service.start()
            await drive(service, schedule, cut, total, set(), [], set())
            plans = {}
            for app, (label, _p, _s) in app_streams.items():
                plans[app] = await service.get_plan(app, label)
            await service.stop()
            return plans

        asyncio.run(phase1())
        plans = asyncio.run(phase2())
        resolver = default_workload_resolver()
        for app, (label, profile, _stream) in app_streams.items():
            offline = build_plan(resolver(app), profile, SIM_CFG)
            assert plans_equivalent(plans[app].plan, offline), (
                f"{app}: recovered plan diverged from the offline pipeline"
            )


class TestFleetRecovery:
    def make_router(self, journal_path: str) -> FleetRouter:
        return FleetRouter(
            config=FleetConfig(workers=2, seed=1),
            service_config=ServiceConfig(
                reservoir_capacity=1 << 20,
                deadline_ms=60_000,
                debounce_s=30.0,
            ),
            sim_config=SIM_CFG,
            journal_path=journal_path,
        )

    def abandon(self, router: FleetRouter) -> None:
        """Simulate losing the whole fleet: SIGKILL every worker and
        drop the router without drain.  Only the journal survives."""
        for handle in list(router._handles.values()):
            handle.process.kill()
        for handle in list(router._handles.values()):
            handle.process.join(timeout=10)
        router.journal.close()

    def test_fleet_restart_mid_stream_converges(self, app_streams, tmp_path):
        journal_path = str(tmp_path / "fleet-journal.jsonl")
        per_app = {
            app: [s[2][i : i + BATCH] for i in range(0, len(s[2]), BATCH)]
            for app, s in app_streams.items()
        }

        def run_halves(router_factory, kill_between):
            router = router_factory()
            router.start()
            for app, (label, _p, _s) in app_streams.items():
                half = max(1, len(per_app[app]) // 2)
                for seq, chunk in enumerate(per_app[app][:half]):
                    router.ingest(app, label, chunk, seq=seq)
            if kill_between:
                self.abandon(router)
                router = router_factory()
                router.start()
            for app, (label, _p, _s) in app_streams.items():
                half = max(1, len(per_app[app]) // 2)
                for seq, chunk in enumerate(
                    per_app[app][half:], start=half
                ):
                    router.ingest(app, label, chunk, seq=seq)
            plans = {}
            for app, (label, _p, _s) in app_streams.items():
                plans[app] = lineage_record(router.get_plan(app, label))
            router.stop()
            return plans

        interrupted = run_halves(
            lambda: self.make_router(journal_path), kill_between=True
        )
        baseline = run_halves(
            lambda: self.make_router(str(tmp_path / "baseline.jsonl")),
            kill_between=False,
        )
        # Same versions, same diffs, site-for-site identical plans: the
        # resumed journal replayed every pre-kill batch into the fresh
        # workers before any post-kill traffic touched them.
        assert interrupted == baseline

    def test_fleet_wide_kill_restores_from_worker_snapshots(
        self, app_streams, tmp_path
    ):
        """With per-worker snapshot stores, a fleet-wide kill recovers
        from the workers' own snapshots: a restarted router regenerates
        the same worker ids, each worker restores its shards and plan
        lineage locally, and the hello handshake seeds the router's
        delivery cursors — so nothing is replayed from batch 0, yet the
        lineage still converges with an uninterrupted run."""
        per_app = {
            app: [s[2][i : i + BATCH] for i in range(0, len(s[2]), BATCH)]
            for app, s in app_streams.items()
        }
        labels = {app: s[0] for app, s in app_streams.items()}

        def make_router(tag: str) -> FleetRouter:
            return FleetRouter(
                config=FleetConfig(workers=2, replicas=1, seed=1),
                service_config=ServiceConfig(
                    reservoir_capacity=1 << 20,
                    deadline_ms=60_000,
                    debounce_s=30.0,
                    # Snapshot after every folded batch: each ingest ack
                    # implies a durable snapshot, so the post-kill
                    # journal suffix is exactly empty.
                    snapshot_every=1,
                ),
                sim_config=SIM_CFG,
                journal_path=str(tmp_path / f"{tag}.jsonl"),
                snapshot_dir=str(tmp_path / f"{tag}-snapshots"),
            )

        def run(tag: str, kill_between: bool):
            router = make_router(tag)
            router.start()
            prekill = 0
            for app in sorted(per_app):
                half = max(1, len(per_app[app]) // 2)
                for seq, chunk in enumerate(per_app[app][:half]):
                    router.ingest(app, labels[app], chunk, seq=seq)
                    prekill += 1
            # Publish v1 before the kill so the restart must restore
            # plan lineage, not just fold state.
            mid = {
                app: lineage_record(router.get_plan(app, labels[app]))
                for app in sorted(per_app)
            }
            if kill_between:
                self.abandon(router)
                router = make_router(tag)
                router.start()
                counters = router.metrics.counters
                assert counters.get("fleet.workers_restored", 0) >= 1
                assert counters.get("fleet.seeded_batches", 0) == prekill
            for app in sorted(per_app):
                half = max(1, len(per_app[app]) // 2)
                for seq, chunk in enumerate(
                    per_app[app][half:], start=half
                ):
                    router.ingest(app, labels[app], chunk, seq=seq)
            final = {
                app: lineage_record(router.get_plan(app, labels[app]))
                for app in sorted(per_app)
            }
            report = router.stop()
            replayed = report["router"]["counters"].get(
                "fleet.replayed_batches", 0
            )
            return mid, final, replayed

        mid_i, final_i, replayed_i = run("snap-crashy", kill_between=True)
        mid_b, final_b, _ = run("snap-baseline", kill_between=False)
        # Worker snapshots covered the whole pre-kill prefix, so the
        # restarted fleet replayed zero journal batches...
        assert replayed_i == 0
        # ...and still converged: same versions, diffs, and plans at
        # both the pre-kill and final milestones.
        assert mid_i == mid_b
        assert final_i == final_b
