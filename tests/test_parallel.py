"""Process-pool fan-out: request coercion, retries, serial fallback."""

import multiprocessing
import pickle

import pytest

from repro.errors import InvariantViolation, ReproError
from repro.experiments import parallel
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunRequest, execute_runs
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.profiling.serialize import result_to_dict
from repro.uarch.results import SimResult

SETTINGS = RunnerSettings(trace_instructions=30_000, apps=("wordpress",), sample_rate=1)


class TestRunRequest:
    def test_coerce_passthrough(self):
        req = RunRequest("wordpress", "baseline")
        assert RunRequest.coerce(req) is req

    def test_coerce_pair_and_triple(self):
        assert RunRequest.coerce(("a", "baseline")) == RunRequest("a", "baseline")
        assert RunRequest.coerce(["a", "twig", 2]) == RunRequest(
            "a", "twig", input_idx=2
        )

    @pytest.mark.parametrize("bad", ["wordpress", ("only-one",), (1, 2, 3, 4, 5)])
    def test_coerce_rejects_garbage(self, bad):
        with pytest.raises(ReproError):
            RunRequest.coerce(bad)


class TestExecuteRuns:
    def test_empty_request_list(self):
        assert execute_runs(SETTINGS, [], jobs=4) == []

    @pytest.mark.slow
    def test_failed_request_resolves_to_none(self):
        # An unknown system raises inside the worker on every attempt;
        # the valid request must still come back as a real result.
        requests = [
            RunRequest("wordpress", "baseline"),
            RunRequest("wordpress", "no-such-system"),
        ]
        results = execute_runs(SETTINGS, requests, jobs=2)
        assert isinstance(results[0], SimResult)
        assert results[1] is None

    @pytest.mark.slow
    def test_workers_populate_shared_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        requests = [
            RunRequest("wordpress", "baseline"),
            RunRequest("wordpress", "ideal_btb"),
        ]
        results = execute_runs(SETTINGS, requests, jobs=2, cache_dir=cache_dir)
        assert all(isinstance(r, SimResult) for r in results)
        # A fresh runner sharing the directory needs zero simulations.
        reader = ExperimentRunner(SETTINGS, cache=ResultCache(cache_dir))
        reread = reader.run("wordpress", "baseline")
        assert reader.stats.simulations == 0
        assert result_to_dict(reread) == result_to_dict(results[0])


def _noop_init(settings, cache_dir):
    pass


def _raise_violation(request):
    raise InvariantViolation("btb", "seeded by test", cycle=12, entry=(1, 2))


class TestInvariantPropagation:
    """Satellite 2: broad handlers must not swallow sanitizer failures."""

    def test_invariant_violation_pickles_roundtrip(self):
        exc = InvariantViolation("ras", "depth mismatch", cycle=7.0, entry=0xBEEF)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, InvariantViolation)
        assert clone.structure == "ras"
        assert clone.message == "depth mismatch"
        assert clone.cycle == 7.0
        assert clone.entry == 0xBEEF
        assert str(clone) == str(exc)

    @pytest.mark.slow
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="monkeypatched worker fns only propagate to forked children",
    )
    def test_worker_invariant_violation_propagates(self, monkeypatch):
        # A sanitizer failure in a worker must abort the whole fan-out
        # (not be retried and then silently recomputed sanitizer-free
        # in the serial fallback).
        monkeypatch.setattr(parallel, "_init_worker", _noop_init)
        monkeypatch.setattr(parallel, "_run_request", _raise_violation)
        with pytest.raises(InvariantViolation, match="seeded by test"):
            execute_runs(SETTINGS, [RunRequest("wordpress", "baseline")], jobs=2)


class TestWarm:
    def test_serial_warm_memoizes(self):
        runner = ExperimentRunner(SETTINGS)  # jobs=1 -> serial path
        out = runner.warm([("wordpress", "baseline"), ("wordpress", "baseline")])
        assert len(out) == 2 and out[0] is out[1]
        assert runner.stats.simulations == 1
        # Subsequent run() is a pure memo hit.
        assert runner.run("wordpress", "baseline") is out[0]
        assert runner.stats.simulations == 1

    @pytest.mark.slow
    def test_parallel_warm_falls_back_serially_for_failures(self):
        runner = ExperimentRunner(SETTINGS, jobs=2)
        # The failing request fails in the pool twice, then the serial
        # fallback re-raises the real error in-process.
        with pytest.raises(ReproError, match="no-such-system"):
            runner.warm(
                [
                    RunRequest("wordpress", "baseline"),
                    RunRequest("wordpress", "no-such-system"),
                ]
            )
        # The healthy run still landed in the memo before the failure.
        assert runner.stats.parallel_runs == 1
