"""Offset compression for brprefetch operands."""

import pytest

from repro.core.compression import (
    EncodedPrefetch,
    encodable,
    encode_offsets,
    required_bits,
)


class TestEncodeOffsets:
    def test_nearby_encodes(self):
        enc = encode_offsets(0x1000, 0x1100, 0x1200, offset_bits=12)
        assert enc == EncodedPrefetch(0x100, 0x100, 12)

    def test_far_branch_fails(self):
        assert encode_offsets(0x1000, 0x100000, 0x100100, 12) is None

    def test_far_target_fails(self):
        assert encode_offsets(0x1000, 0x1100, 0x5000000, 12) is None

    def test_negative_offsets_encode(self):
        enc = encode_offsets(0x2000, 0x1F00, 0x1E00, 12)
        assert enc is not None
        assert enc.prefetch_to_branch == -0x100
        assert enc.branch_to_target == -0x100

    def test_boundary_values(self):
        assert encode_offsets(0, 2047, 2047 * 2, 12) is not None
        assert encode_offsets(0, 2048, 2048, 12) is None
        assert encode_offsets(2048, 0, 0, 12) is not None  # -2048 fits

    def test_wider_encoding_accepts_more(self):
        assert encode_offsets(0, 1 << 20, 1 << 20, 12) is None
        assert encode_offsets(0, 1 << 20, 1 << 20, 24) is not None


class TestEncodable:
    def test_matches_encode(self):
        cases = [
            (0x1000, 0x1100, 0x1200, 12),
            (0x1000, 0x100000, 0x100100, 12),
        ]
        for args in cases:
            assert encodable(*args) == (encode_offsets(*args) is not None)


class TestRequiredBits:
    def test_symmetric_pair(self):
        b1, b2 = required_bits(0x1000, 0x1010, 0x1020)
        assert b1 == b2

    def test_zero_offsets(self):
        b1, b2 = required_bits(0x1000, 0x1000, 0x1000)
        assert b1 == 1 and b2 == 1

    def test_larger_distance_needs_more_bits(self):
        near = required_bits(0, 100, 200)
        far = required_bits(0, 100_000, 200_000)
        assert far[0] > near[0] and far[1] > near[1]
