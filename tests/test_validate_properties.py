"""Property-based differential tests (DESIGN.md §8).

The optimized frontend structures must agree with the obviously-correct
reference oracles in ``repro.validate.oracles`` on *every* observable:
hit/miss sequences, eviction victims, popped return addresses, and
per-set recency order.  Streams are randomized but fully seeded, so a
failure here is a deterministic reproducer.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.config import BTBConfig, SimConfig
from repro.frontend.btb import BTB
from repro.frontend.ibtb import IndirectBTB
from repro.frontend.ras import ReturnAddressStack
from repro.isa.branches import BranchKind
from repro.validate import (
    DifferentialChecker,
    ReferenceBTB,
    ShadowBTB,
    ShadowIBTB,
    ShadowRAS,
    cosimulate,
    exercise_prefetch_buffer,
)
from repro.validate.fuzz import fuzz_buffer_ops, run_fuzz, shrink_window
from repro.workloads.rng import make_rng

FAST_SEEDS = range(20)


class TestStructureProperties:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_btb_matches_oracle(self, seed):
        rng = make_rng("prop-btb", seed)
        checker = DifferentialChecker()
        ways = rng.choice((1, 2, 4))
        sets = rng.choice((4, 8))
        shadow = ShadowBTB(BTB(BTBConfig(entries=sets * ways, ways=ways)), checker)
        for _ in range(600):
            pc = 0x1000 + rng.randrange(64) * 4
            if rng.random() < 0.6:
                shadow.lookup(pc)
            else:
                shadow.insert(pc, pc + rng.randrange(512), BranchKind.UNCOND_DIRECT)
        assert checker.ok, checker.divergence.describe()
        assert checker.ops == 600

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_ibtb_matches_oracle(self, seed):
        rng = make_rng("prop-ibtb", seed)
        checker = DifferentialChecker()
        ways = rng.choice((1, 2, 4))
        sets = rng.choice((4, 8))
        shadow = ShadowIBTB(
            IndirectBTB(BTBConfig(entries=sets * ways, ways=ways)), checker
        )
        for _ in range(600):
            pc = 0x2000 + rng.randrange(48) * 4
            shadow.predict_and_record(pc, 0x8000 + rng.randrange(8) * 64)
        assert checker.ok, checker.divergence.describe()

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_ras_matches_oracle(self, seed):
        rng = make_rng("prop-ras", seed)
        checker = DifferentialChecker()
        shadow = ShadowRAS(ReturnAddressStack(rng.choice((2, 4, 8))), checker)
        for _ in range(600):
            # Pop-heavy so both underflow and overflow paths execute.
            if rng.random() < 0.55:
                shadow.push(0x4000 + rng.randrange(1024) * 4)
            else:
                shadow.pop()
        assert checker.ok, checker.divergence.describe()

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_prefetch_buffer_matches_oracle(self, seed):
        rng = make_rng("prop-buf", seed)
        capacity = rng.choice((0, 2, 4, 8))
        checker = exercise_prefetch_buffer(fuzz_buffer_ops(rng), capacity)
        assert checker.ok, checker.divergence.describe()

    def test_hit_miss_and_victim_sequences_identical(self):
        """The explicit satellite property: sequences, not just final state."""
        for seed in range(10):
            rng = make_rng("prop-seq", seed)
            btb = BTB(BTBConfig(entries=16, ways=2))
            ref = ReferenceBTB(8, 2)
            optimized, oracle = [], []
            for _ in range(500):
                pc = rng.randrange(48) * 4
                if rng.random() < 0.5:
                    optimized.append(btb.lookup(pc) is not None)
                    oracle.append(ref.lookup(pc))
                else:
                    victim = btb.insert(pc, pc + 4, BranchKind.CALL_DIRECT)
                    optimized.append(victim.pc if victim is not None else None)
                    oracle.append(ref.insert(pc, pc + 4))
            assert optimized == oracle


class TestDivergenceMachinery:
    def test_injected_corruption_is_caught_with_replay_window(self):
        """Sneak a mutation past the shadow; the checker must report it."""
        checker = DifferentialChecker(window=8)
        shadow = ShadowBTB(BTB(BTBConfig(entries=8, ways=2)), checker)
        for pc in range(0, 12 * 4, 4):
            shadow.insert(pc, pc + 4, BranchKind.UNCOND_DIRECT)
        assert checker.ok
        # Out-of-band eviction the oracle never saw.
        victim_pc = next(iter(shadow.btb._sets[0]))
        shadow.btb.invalidate(victim_pc)
        shadow.lookup(victim_pc)
        assert not checker.ok
        div = checker.divergence
        assert div.structure == "btb"
        assert 0 < len(div.window) <= 8
        assert div.window[-1][1:] == div.op
        assert "oracle" in div.describe()

    def test_first_divergence_is_frozen(self):
        checker = DifferentialChecker()
        shadow = ShadowRAS(ReturnAddressStack(4), checker)
        shadow.push(0x100)
        shadow.push(0x200)
        shadow.ras._stack[0] = 0xBAD  # corrupt the optimized side
        shadow.ras._stack[1] = 0xBAD
        shadow.pop()
        first = checker.divergence
        assert first is not None
        shadow.pop()  # a second divergence must not overwrite the first
        assert checker.divergence is first


class TestTraceCosimulation:
    def test_tiny_workload_cosimulates_clean(self, tiny_workload, tiny_trace):
        checker = cosimulate(tiny_workload, tiny_trace)
        assert checker.ok, checker.divergence.describe()
        assert checker.ops > 1000

    def test_small_geometry_cosimulates_clean(self, tiny_workload, tiny_trace):
        # Tiny BTBs force constant eviction: the hard case for LRU parity.
        cfg = SimConfig().with_btb(entries=64, ways=2)
        checker = cosimulate(tiny_workload, tiny_trace, cfg)
        assert checker.ok, checker.divergence.describe()


class TestFuzzCorpus:
    def test_default_corpus_clean(self):
        report = run_fuzz(cases=20)
        assert report.ok, "\n\n".join(f.describe() for f in report.failures)
        assert report.cases == 20
        assert report.ops_checked > 10_000

    @pytest.mark.slow
    def test_extended_corpus_clean(self):
        report = run_fuzz(cases=200)
        assert report.ok, "\n\n".join(f.describe() for f in report.failures)


class TestShrinker:
    def test_shrink_window_reaches_one_minimal_window(self, tiny_trace):
        target, occurrences = Counter(tiny_trace.blocks).most_common(1)[0]
        assert occurrences >= 3

        def predicate(tr):
            return tr.blocks.count(target) >= 3

        assert predicate(tiny_trace)
        lo, hi = shrink_window(tiny_trace, predicate)
        assert predicate(tiny_trace.slice(lo, hi))
        # 1-minimal: dropping a single unit from either end cures it.
        if hi - lo > 1:
            assert not predicate(tiny_trace.slice(lo, hi - 1))
            assert not predicate(tiny_trace.slice(lo + 1, hi))
        assert hi - lo < len(tiny_trace)
