"""SimResult derived metrics."""

import pytest

from repro.uarch.results import SimResult


def _result(**kw):
    params = dict(instructions=100_000, cycles=50_000)
    params.update(kw)
    return SimResult(**params)


class TestDerivedMetrics:
    def test_ipc(self):
        assert _result().ipc() == 2.0

    def test_ipc_zero_cycles(self):
        assert SimResult().ipc() == 0.0

    def test_mpki(self):
        r = _result(btb_misses=500)
        assert r.btb_mpki() == 5.0

    def test_mpki_no_instructions(self):
        assert SimResult(btb_misses=5).btb_mpki() == 0.0

    def test_coverage(self):
        r = _result(btb_misses=300, btb_covered_misses=700)
        assert r.coverage() == 0.7
        assert r.total_would_be_misses() == 1000

    def test_coverage_no_misses(self):
        assert _result().coverage() == 0.0

    def test_prefetch_accuracy(self):
        r = _result(prefetches_issued=1000, prefetches_used=313)
        assert r.prefetch_accuracy() == pytest.approx(0.313)

    def test_accuracy_no_prefetches(self):
        assert _result().prefetch_accuracy() == 0.0

    def test_frontend_bound(self):
        r = SimResult(instructions=300, cycles=100)
        assert r.frontend_bound(width=6) == pytest.approx(0.5)

    def test_frontend_bound_saturates_at_zero(self):
        r = SimResult(instructions=600, cycles=100)
        assert r.frontend_bound(width=6) == 0.0

    def test_speedup_over(self):
        fast = SimResult(instructions=1, cycles=80)
        slow = SimResult(instructions=1, cycles=100)
        assert fast.speedup_over(slow) == pytest.approx(25.0)
        assert slow.speedup_over(fast) == pytest.approx(-20.0)

    def test_speedup_degenerate(self):
        assert SimResult().speedup_over(SimResult()) == 0.0

    def test_dynamic_overhead(self):
        r = SimResult(instructions=103_000, extra_dynamic_instructions=3000)
        assert r.dynamic_overhead() == pytest.approx(0.03)

    def test_dynamic_overhead_zero(self):
        assert _result().dynamic_overhead() == 0.0

    def test_summary_contains_key_metrics(self):
        r = _result(label="x", btb_misses=100)
        text = r.summary()
        assert "x" in text and "IPC" in text and "MPKI" in text
