"""Reuse-distance analysis: exactness and LRU equivalence."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.reuse import (
    INFINITE,
    btb_miss_curve,
    distance_histogram,
    miss_rate_for_capacity,
    reuse_distances,
    taken_branch_references,
)
from repro.frontend.btb import FullyAssociativeBTB


class TestReuseDistances:
    def test_first_touches_infinite(self):
        assert reuse_distances([1, 2, 3]) == [INFINITE] * 3

    def test_immediate_rereference_zero(self):
        assert reuse_distances([1, 1]) == [INFINITE, 0]

    def test_classic_example(self):
        # a b c a : a's distance is 2 (b, c touched in between)
        assert reuse_distances(["a", "b", "c", "a"])[-1] == 2

    def test_duplicates_counted_once(self):
        # a b b a : only b intervenes -> distance 1
        assert reuse_distances(["a", "b", "b", "a"])[-1] == 1

    def test_interleaved(self):
        d = reuse_distances([1, 2, 1, 2, 1])
        assert d == [INFINITE, INFINITE, 1, 1, 1]

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=40)
    def test_matches_lru_simulation(self, refs, capacity):
        """distance >= capacity  <=>  the reference misses in LRU."""
        distances = reuse_distances(refs)
        lru = FullyAssociativeBTB(capacity)
        for ref, dist in zip(refs, distances):
            hit = lru.access(ref)
            expected_hit = dist != INFINITE and dist < capacity
            assert hit == expected_hit


class TestMissRate:
    def test_all_cold(self):
        assert miss_rate_for_capacity([INFINITE, INFINITE], 8) == 1.0

    def test_capacity_threshold(self):
        d = [0, 5, 10, INFINITE]
        assert miss_rate_for_capacity(d, 6) == 0.5  # 10 and INF miss

    def test_empty(self):
        assert miss_rate_for_capacity([], 8) == 0.0

    def test_monotone_in_capacity(self):
        rng = random.Random(1)
        refs = [rng.randrange(500) for _ in range(4000)]
        d = reuse_distances(refs)
        rates = [miss_rate_for_capacity(d, c) for c in (16, 64, 256, 1024)]
        assert rates == sorted(rates, reverse=True)


class TestHistogram:
    def test_buckets_partition(self):
        d = [INFINITE, 10, 100, 5000, 100000]
        h = distance_histogram(d)
        assert sum(h.values()) == len(d)
        assert h["cold"] == 1
        assert h["<64"] == 1
        assert h[">=65536"] == 1


class TestBTBMissCurve:
    def test_curve_decreasing(self, tiny_workload, tiny_trace):
        curve = btb_miss_curve(tiny_workload, tiny_trace, capacities=(64, 512, 4096))
        rates = [r for _, r in curve]
        assert rates == sorted(rates, reverse=True)

    def test_agrees_with_fa_replay(self, tiny_workload, tiny_trace):
        refs = taken_branch_references(tiny_workload, tiny_trace)
        curve = dict(btb_miss_curve(tiny_workload, tiny_trace, capacities=(256,)))
        lru = FullyAssociativeBTB(256)
        misses = sum(0 if lru.access(pc) else 1 for pc in refs)
        assert curve[256] == pytest.approx(misses / len(refs))
