"""HTTP transport round-trips, wire versioning, typed errors
(repro.service.http) over real localhost sockets."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import SimConfig
from repro.core.twig import build_plan
from repro.errors import (
    ServiceClosed,
    ServiceError,
    ServiceOverload,
    TransportError,
)
from repro.service.bench import collect_sample_stream
from repro.service.build import plans_equivalent
from repro.service.http import (
    WIRE_SCHEMA_VERSION,
    HttpPlanServer,
    PlanClient,
)
from repro.service.server import PlanService, ServiceConfig

CFG = SimConfig().with_btb(entries=512)
APP = "tinyapp"


@pytest.fixture(scope="module")
def stream_artifacts(tiny_workload, tiny_trace):
    profile, stream = collect_sample_stream(tiny_workload, tiny_trace, CFG)
    assert stream, "tiny trace must produce BTB miss samples"
    return profile, stream


def make_service(tiny_workload, **overrides) -> PlanService:
    defaults = dict(
        queue_depth=64,
        deadline_ms=30_000,
        reservoir_capacity=1 << 20,
        workers=2,
        debounce_s=30.0,
    )
    defaults.update(overrides)
    return PlanService(
        workload_for=lambda app: tiny_workload,
        config=ServiceConfig(**defaults),
        sim_config=CFG,
    )


async def raw_request(host: int, port: int, text: bytes):
    """Send raw bytes, return (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(text)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        length = 0
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = hline.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        body = await reader.readexactly(length) if length else b""
        return status, (json.loads(body) if body else {})
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def request_bytes(method, path, payload=None, schema=WIRE_SCHEMA_VERSION):
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        + (f"X-Repro-Schema: {schema}\r\n" if schema is not None else "")
        + "Connection: close\r\n\r\n"
    ).encode()
    return head + body


class TestRoundTrip:
    def test_ingest_plan_stats_health_drain(
        self, tiny_workload, stream_artifacts
    ):
        profile, stream = stream_artifacts
        label = profile.input_label

        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                client = PlanClient("127.0.0.1", server.port)
                health = await client.health()
                assert health == {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "status": "ok",
                    "started": True,
                }
                for seq, start in enumerate(range(0, len(stream), 64)):
                    chunk = stream[start : start + 64]
                    ack = await client.ingest(APP, label, chunk, seq=seq)
                    assert ack.key == (APP, label)
                    assert ack.received == len(chunk)
                version = await client.get_plan(APP, label)
                stats = await client.stats()
                drained = await client.drain()
                return version, stats, drained

        version, stats, drained = asyncio.run(scenario())
        offline = build_plan(tiny_workload, profile, CFG)
        assert plans_equivalent(version.plan, offline)
        assert version.checked
        shard = stats["shards"][f"{APP}/{profile.input_label}"]
        assert shard["generation"] > 0
        assert drained["closed"] is True or drained.get("shards")

    def test_get_plan_via_query_string(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts
        label = profile.input_label

        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                client = PlanClient("127.0.0.1", server.port)
                await client.ingest(APP, label, stream[:64], seq=0)
                from urllib.parse import quote

                status, data = await raw_request(
                    "127.0.0.1",
                    server.port,
                    request_bytes(
                        "GET",
                        f"/v1/plan?app={quote(APP)}&input={quote(label)}",
                    ),
                )
            await service.stop()
            return status, data

        status, data = asyncio.run(scenario())
        assert status == 200
        assert data["schema_version"] == WIRE_SCHEMA_VERSION
        assert data["plan_version"]["app"] == APP


class TestWireVersioning:
    def test_future_header_version_refused(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                status, data = await raw_request(
                    "127.0.0.1",
                    server.port,
                    request_bytes("GET", "/v1/health", schema=999),
                )
            await service.stop()
            return status, data

        status, data = asyncio.run(scenario())
        assert status == 400
        assert data["error"]["type"] == "TransportError"
        assert "unsupported wire schema version 999" in data["error"]["message"]

    def test_future_body_version_refused(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                status, data = await raw_request(
                    "127.0.0.1",
                    server.port,
                    request_bytes(
                        "POST",
                        "/v1/plan",
                        payload={
                            "schema_version": 999,
                            "app": APP,
                            "input": "x",
                        },
                        schema=None,  # no header: body stamp must gate
                    ),
                )
            await service.stop()
            return status, data

        status, data = asyncio.run(scenario())
        assert status == 400
        assert data["error"]["type"] == "TransportError"

    def test_client_refuses_future_response_version(self, tiny_workload):
        """Version negotiation is two-sided: a client must refuse a
        response stamped with a schema it does not speak."""

        async def fake_server(reader, writer):
            await reader.read(200)
            body = json.dumps({"schema_version": 999}).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\nContent-Length: "
                + str(len(body)).encode()
                + b"\r\nX-Repro-Schema: 999\r\n\r\n"
                + body
            )
            await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = PlanClient("127.0.0.1", port)
            with pytest.raises(TransportError, match="unsupported wire"):
                await client.health()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_unknown_endpoint_rejected(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                status, data = await raw_request(
                    "127.0.0.1",
                    server.port,
                    request_bytes("GET", "/v2/everything"),
                )
            await service.stop()
            return status, data

        status, data = asyncio.run(scenario())
        assert status == 400
        assert "no endpoint" in data["error"]["message"]


class TestTypedErrors:
    def test_overload_crosses_the_wire_as_itself(self, tiny_workload):
        """A shed must stay distinguishable (503 + ServiceOverload):
        the client's retry logic depends on the class."""

        async def scenario():
            service = make_service(
                tiny_workload, queue_depth=1, workers=1,
                synthetic_delay_s=0.2,
            )
            await service.start()
            async with HttpPlanServer(service) as server:
                client = PlanClient("127.0.0.1", server.port)
                tasks = [
                    asyncio.ensure_future(client.stats()) for _ in range(12)
                ]
                results = await asyncio.gather(*tasks, return_exceptions=True)
            await service.stop()
            return results

        results = asyncio.run(scenario())
        sheds = [r for r in results if isinstance(r, ServiceOverload)]
        served = [r for r in results if isinstance(r, dict)]
        assert sheds, "an over-capacity burst must shed over the wire too"
        assert served, "in-capacity requests must still be served"

    def test_draining_service_is_closed_over_the_wire(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                client = PlanClient("127.0.0.1", server.port)
                service._closed = True  # what stop() sets while draining
                health = await client.health()
                with pytest.raises(ServiceClosed):
                    await client.stats()
                service._closed = False
            await service.stop()
            return health

        health = asyncio.run(scenario())
        # Health stays answerable while the queue path is refusing.
        assert health["status"] == "draining"

    def test_unknown_shard_is_a_service_error(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            async with HttpPlanServer(service) as server:
                client = PlanClient("127.0.0.1", server.port)
                with pytest.raises(ServiceError, match="no samples"):
                    await client.get_plan(APP, "never-ingested")
            await service.stop()

        asyncio.run(scenario())

    def test_unreachable_server_is_a_transport_error(self):
        async def scenario():
            client = PlanClient("127.0.0.1", 1)  # nothing listens there
            with pytest.raises(TransportError, match="cannot reach"):
                await client.health()

        asyncio.run(scenario())
