"""PrefetchPlan data model and overhead accounting."""

import pytest

from repro.core.plan import (
    BRCOALESCE_BYTES,
    BRPREFETCH_BYTES,
    InjectionOp,
    OP_COALESCE,
    OP_PREFETCH,
    PrefetchPlan,
    TABLE_ENTRY_BYTES,
)
from repro.errors import PlanError
from repro.workloads.cfg import KIND_COND, KIND_UNCOND


def _pf(block=1, pc=0x100):
    return InjectionOp(
        kind=OP_PREFETCH,
        block=block,
        entries=((pc, pc + 8, KIND_UNCOND),),
        bytes_cost=BRPREFETCH_BYTES,
    )


def _co(block=1, n=3):
    return InjectionOp(
        kind=OP_COALESCE,
        block=block,
        entries=tuple((0x200 + 8 * i, 0x400, KIND_COND) for i in range(n)),
        bytes_cost=BRCOALESCE_BYTES,
    )


class TestInjectionOp:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            InjectionOp(kind="nop", block=1, entries=((1, 2, 3),), bytes_cost=4)

    def test_empty_entries_rejected(self):
        with pytest.raises(PlanError):
            InjectionOp(kind=OP_PREFETCH, block=1, entries=(), bytes_cost=4)

    def test_brprefetch_single_entry(self):
        with pytest.raises(PlanError):
            InjectionOp(
                kind=OP_PREFETCH,
                block=1,
                entries=((1, 2, 3), (4, 5, 6)),
                bytes_cost=4,
            )


class TestPrefetchPlan:
    def test_op_counting(self):
        plan = PrefetchPlan(app_name="t")
        plan.add_op(_pf(block=1))
        plan.add_op(_pf(block=1, pc=0x180))
        plan.add_op(_co(block=2, n=4))
        assert plan.total_ops() == 3
        assert plan.total_prefetch_entries() == 6
        assert plan.static_instruction_count() == 3

    def test_static_bytes(self):
        plan = PrefetchPlan(app_name="t")
        plan.add_op(_pf())
        plan.add_op(_co(n=2))
        plan.table = tuple((0x200 + 8 * i, 0x400, KIND_COND) for i in range(2))
        expected = BRPREFETCH_BYTES + BRCOALESCE_BYTES + 2 * TABLE_ENTRY_BYTES
        assert plan.static_bytes() == expected

    def test_static_overhead_fraction(self):
        plan = PrefetchPlan(app_name="t")
        plan.add_op(_pf())
        assert plan.static_overhead_fraction(600) == BRPREFETCH_BYTES / 600

    def test_overhead_rejects_zero_text(self):
        with pytest.raises(PlanError):
            PrefetchPlan(app_name="t").static_overhead_fraction(0)

    def test_sim_ops_flattening(self):
        plan = PrefetchPlan(app_name="t")
        plan.add_op(_pf(block=3))
        plan.add_op(_co(block=3, n=2))
        sim = plan.sim_ops()
        entries, extra, n_ops = sim[3]
        assert len(entries) == 3
        assert extra == 2 and n_ops == 2

    def test_describe(self):
        plan = PrefetchPlan(app_name="demo")
        plan.add_op(_pf())
        text = plan.describe()
        assert "demo" in text and "1 brprefetch" in text
