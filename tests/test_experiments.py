"""Experiment runner, registry, and report rendering.

These tests shrink the run via environment knobs so they stay fast;
the full-scale numbers are produced by the benchmark suite.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_per_app, format_series, save_result
from repro.experiments.runner import ExperimentRunner, RunnerSettings


@pytest.fixture(scope="module")
def small_runner():
    settings = RunnerSettings(
        trace_instructions=120_000,
        apps=("wordpress",),
        sample_rate=1,
    )
    return ExperimentRunner(settings)


class TestRunnerCaching:
    def test_workload_cached(self, small_runner):
        assert small_runner.workload("wordpress") is small_runner.workload("wordpress")

    def test_trace_cached_per_input(self, small_runner):
        t0 = small_runner.trace("wordpress", 0)
        t1 = small_runner.trace("wordpress", 1)
        assert t0 is small_runner.trace("wordpress", 0)
        assert t0 is not t1

    def test_result_cached(self, small_runner):
        a = small_runner.run("wordpress", "baseline")
        b = small_runner.run("wordpress", "baseline")
        assert a is b

    def test_unknown_system_rejected(self, small_runner):
        with pytest.raises(ReproError):
            small_runner.run("wordpress", "magic")

    def test_distinct_configs_not_conflated(self, small_runner):
        from repro.config import SimConfig

        a = small_runner.run("wordpress", "baseline")
        b = small_runner.run(
            "wordpress", "baseline", config=SimConfig().with_btb(entries=2048)
        )
        assert a is not b
        assert b.btb_misses >= a.btb_misses

    def test_speedup_and_reduction_helpers(self, small_runner):
        s = small_runner.speedup("wordpress", "ideal_btb")
        assert s > 0
        red = small_runner.miss_reduction("wordpress", "ideal_btb")
        assert red == pytest.approx(1.0)

    def test_all_systems_run(self, small_runner):
        for system in ("shotgun", "confluence", "twig"):
            res = small_runner.run("wordpress", system)
            assert res.cycles > 0


class TestRegistry:
    def test_contains_every_figure_and_table(self):
        expected = {f"fig{n:02d}" for n in range(1, 29) if n != 13}
        expected |= {"table2", "table3"}
        expected |= {"drift01"}  # online-adaptation extension (DESIGN §16)
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_experiment_metadata(self):
        for exp in EXPERIMENTS.values():
            assert exp.title
            assert exp.paper_claim
            assert callable(exp.run)

    def test_fig03_runs_on_small_runner(self, small_runner):
        result = run_experiment("fig03", runner=small_runner)
        assert "wordpress" in result["per_app"]
        assert result["average"] > 0
        assert result["paper"]["average"] == 29.7


class TestReport:
    def test_format_per_app_scalar(self):
        text = format_per_app("T", {"a": 1.5, "b": 2.5}, paper={"x": 1})
        assert "a" in text and "1.50" in text and "paper" in text

    def test_format_per_app_nested(self):
        text = format_per_app("T", {"a": {"x": 1.0, "y": 2.0}})
        assert "x=1.00" in text

    def test_format_series(self):
        text = format_series("S", {8: {"twig": 40.0}, 64: {"twig": 45.0}})
        assert "8" in text and "twig=40.00" in text

    def test_save_result(self, tmp_path):
        path = save_result("figXX", {"average": 1.0}, directory=str(tmp_path))
        with open(path) as fh:
            assert json.load(fh)["average"] == 1.0
