"""Two-level bulk-preload BTB (§5 prior work)."""

import pytest

from repro.config import SimConfig
from repro.prefetchers.base import LOOKUP_COVERED, LOOKUP_HIT, LOOKUP_MISS, BaselineBTBSystem
from repro.prefetchers.bulk_preload import (
    BULK_TRANSFER_LATENCY,
    BulkPreloadBTBSystem,
)
from repro.uarch.sim import simulate
from repro.workloads.cfg import KIND_UNCOND


@pytest.fixture()
def bulk(tiny_workload):
    return BulkPreloadBTBSystem(tiny_workload, SimConfig(), l1_entries=64)


class TestBulkPreload:
    def test_cold_miss_and_fill(self, bulk):
        assert bulk.lookup(0x1000, KIND_UNCOND, 0) == LOOKUP_MISS
        bulk.fill(0x1000, 0x2000, KIND_UNCOND, 0)
        assert bulk.lookup(0x1000, KIND_UNCOND, 1) == LOOKUP_HIT

    def test_region_bulk_preload_covers_neighbours(self, bulk):
        # Two branches in the same 512B region.
        bulk.fill(0x1000, 0x2000, KIND_UNCOND, 0)
        bulk.fill(0x1040, 0x3000, KIND_UNCOND, 0)
        # Evict both from the tiny L1 with conflicting fills.
        for i in range(200):
            bulk.fill(0x100000 + i * 64, 0x5000, KIND_UNCOND, 0)
        assert bulk.l1.peek(0x1000) is None
        # A miss to one branch of the region triggers the bulk transfer...
        assert bulk.lookup(0x1000, KIND_UNCOND, 100) == LOOKUP_MISS
        assert bulk.bulk_transfers == 1
        # ...and the neighbour is covered once the transfer lands.
        late = 100 + BULK_TRANSFER_LATENCY + 1
        assert bulk.lookup(0x1040, KIND_UNCOND, late) == LOOKUP_COVERED

    def test_transfer_latency_enforced(self, bulk):
        bulk.fill(0x1000, 0x2000, KIND_UNCOND, 0)
        bulk.fill(0x1040, 0x3000, KIND_UNCOND, 0)
        for i in range(200):
            bulk.fill(0x100000 + i * 64, 0x5000, KIND_UNCOND, 0)
        bulk.lookup(0x1000, KIND_UNCOND, 100)
        # Immediately after the trigger the entry is in flight.
        assert bulk.lookup(0x1040, KIND_UNCOND, 101) == LOOKUP_MISS

    def test_distant_region_not_preloaded(self, bulk):
        bulk.fill(0x1000, 0x2000, KIND_UNCOND, 0)
        bulk.fill(0x90000, 0x3000, KIND_UNCOND, 0)
        for i in range(200):
            bulk.fill(0x100000 + i * 64, 0x5000, KIND_UNCOND, 0)
        bulk.lookup(0x1000, KIND_UNCOND, 100)
        assert bulk.l1.peek(0x90000) is None

    def test_l2_region_capacity_bounded(self, tiny_workload):
        bulk = BulkPreloadBTBSystem(
            tiny_workload, SimConfig(), l1_entries=64, l2_entries=64
        )
        for i in range(100):
            bulk.fill(0x1000 + i * 1024, 0x2000, KIND_UNCOND, 0)
        assert len(bulk._l2) <= bulk._l2_capacity_regions

    def test_runs_in_simulator(self, tiny_workload, tiny_trace):
        cfg = SimConfig()
        res = simulate(
            tiny_workload, tiny_trace, cfg, BulkPreloadBTBSystem(tiny_workload, cfg)
        )
        assert res.cycles > 0
        assert res.btb_accesses > 0

    def test_spatial_only_coverage_is_partial(self, tiny_workload, tiny_trace):
        """Bulk preload helps, but far less than the footprint demands
        (the paper's 'similar to next-line prefetchers' critique)."""
        cfg = SimConfig().with_btb(entries=512)
        base = simulate(tiny_workload, tiny_trace, cfg, BaselineBTBSystem(cfg))
        bulk = simulate(
            tiny_workload,
            tiny_trace,
            cfg,
            BulkPreloadBTBSystem(tiny_workload, cfg, l1_entries=512),
        )
        # Equal L1 budget: the second level should remove some misses.
        assert bulk.btb_misses < base.btb_misses
