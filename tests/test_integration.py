"""End-to-end integration: the full pipeline and the paper's headline
orderings on a scaled-down configuration."""

from dataclasses import replace

import pytest

from repro import quick_run
from repro.config import SimConfig
from repro.core.twig import build_plan, run_with_plan
from repro.prefetchers.base import BaselineBTBSystem
from repro.prefetchers.confluence import ConfluenceBTBSystem
from repro.prefetchers.shotgun import ShotgunBTBSystem
from repro.profiling.collector import collect_profile
from repro.trace.walker import generate_trace
from repro.uarch.sim import FrontendSimulator, simulate
from repro.workloads.cfg import build_workload
from tests.conftest import make_tiny_spec


@pytest.fixture(scope="module")
def stressed():
    """A small app with a deliberately small BTB: plenty of misses."""
    spec = make_tiny_spec(name="stress", functions=260, popularity_exponent=0.25)
    wl = build_workload(spec, seed=11)
    train = generate_trace(wl, spec.make_input(0), max_instructions=150_000)
    test = generate_trace(wl, spec.make_input(1), max_instructions=150_000)
    cfg = SimConfig().with_btb(entries=512)
    return wl, train, test, cfg


class TestHeadlineOrderings:
    """The orderings every paper figure relies on."""

    def test_full_stack_ordering(self, stressed):
        wl, train, test, cfg = stressed
        warm = len(test) // 3

        def run(system, config=None):
            c = config or cfg
            sim = FrontendSimulator(wl, c, system(c) if callable(system) else system)
            return sim.run(test, warmup_units=warm)

        base = run(lambda c: BaselineBTBSystem(c))
        ideal = FrontendSimulator(
            wl, replace(cfg, ideal_btb=True), BaselineBTBSystem(cfg)
        ).run(test, warmup_units=warm)
        profile = collect_profile(wl, train, cfg)
        plan = build_plan(wl, profile, cfg)
        twig = run_with_plan(wl, test, plan, cfg, warmup_units=warm)
        # Shotgun with its partitions scaled to the same storage budget
        # as this test's 512-entry baseline (5120/1536 out of 8192 in
        # the paper -> 320/96 out of 512 here).
        shotgun = run(
            lambda c: ShotgunBTBSystem(wl, c, ubtb_entries=320, cbtb_entries=96)
        )

        # Ideal BTB bounds everything; Twig lands between baseline and
        # ideal and covers a meaningful share of misses.
        assert ideal.cycles < twig.cycles < base.cycles
        assert ideal.btb_misses == 0
        assert twig.btb_mpki() < base.btb_mpki()
        coverage = 1 - twig.btb_mpki() / base.btb_mpki()
        assert coverage > 0.2
        # Twig beats Shotgun (the paper's headline comparison).
        assert twig.cycles < shotgun.cycles

    def test_btb_size_monotonicity(self, stressed):
        wl, _, test, cfg = stressed
        mpkis = []
        for entries in (256, 1024, 4096):
            c = cfg.with_btb(entries=entries)
            res = simulate(wl, test, c, BaselineBTBSystem(c))
            mpkis.append(res.btb_mpki())
        assert mpkis[0] > mpkis[1] > mpkis[2]

    def test_prefetch_distance_has_interior_optimum_shape(self, stressed):
        """Distance 0 must underperform the default (too late to fill)."""
        wl, train, test, cfg = stressed
        warm = len(test) // 3
        profile = collect_profile(wl, train, cfg)
        covs = {}
        for dist in (0, 20):
            c = cfg.with_twig(prefetch_distance=dist)
            plan = build_plan(wl, profile, c)
            res = run_with_plan(wl, test, plan, c, warmup_units=warm)
            covs[dist] = res.btb_covered_misses
        assert covs[20] >= covs[0]

    def test_coalescing_adds_coverage_over_software_only(self, stressed):
        wl, train, test, cfg = stressed
        warm = len(test) // 3
        profile = collect_profile(wl, train, cfg)
        full = run_with_plan(
            wl, test, build_plan(wl, profile, cfg), cfg, warmup_units=warm
        )
        sw_cfg = cfg.with_twig(enable_coalescing=False)
        sw = run_with_plan(
            wl, test, build_plan(wl, profile, sw_cfg), sw_cfg, warmup_units=warm
        )
        # Full Twig covers at least as many misses as software-only
        # with inline-encodable offsets.
        assert full.btb_covered_misses >= sw.btb_covered_misses


class TestQuickRun:
    def test_quick_run_contract(self):
        results = quick_run("wordpress", max_instructions=100_000)
        assert set(results) == {"baseline", "ideal_btb", "twig"}
        base, ideal, twig = (
            results["baseline"],
            results["ideal_btb"],
            results["twig"],
        )
        assert ideal.cycles <= twig.cycles <= base.cycles * 1.02
        assert twig.prefetch_ops_executed > 0

    def test_quick_run_unknown_app(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            quick_run("doom")


class TestCrossSystemConsistency:
    def test_all_systems_agree_on_instruction_count(self, stressed):
        wl, _, test, cfg = stressed
        base = simulate(wl, test, cfg, BaselineBTBSystem(cfg))
        shotgun = simulate(wl, test, cfg, ShotgunBTBSystem(wl, cfg))
        confluence = simulate(wl, test, cfg, ConfluenceBTBSystem(wl, cfg))
        assert base.instructions == shotgun.instructions == confluence.instructions

    def test_accesses_independent_of_btb_system(self, stressed):
        wl, _, test, cfg = stressed
        base = simulate(wl, test, cfg, BaselineBTBSystem(cfg))
        shotgun = simulate(wl, test, cfg, ShotgunBTBSystem(wl, cfg))
        assert base.btb_accesses == shotgun.btb_accesses
