"""Sanitizer coverage: pipeline smoke, negative paths, cache-key hygiene.

Three contracts from DESIGN.md §8:

1. with ``sanitize=True`` every registered system runs a small app to
   completion with zero :class:`InvariantViolation`\\ s;
2. deliberately corrupted structures *do* raise, naming the structure
   and the cycle (the sanitizers are not no-ops);
3. the sanitize flag splits the runner's cache key — sanitized and
   plain runs never share memo or disk entries — while sanitize-off
   runs pay nothing for the feature's existence.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import BTBConfig, SimConfig, sanitize_from_env
from repro.errors import ConfigError, InvariantViolation
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    SYSTEMS,
    ExperimentRunner,
    RunnerSettings,
    _config_signature,
)
from repro.frontend.btb import BTB, BTBEntry
from repro.frontend.prefetch_buffer import PrefetchBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.isa.branches import BranchKind
from repro.uarch.results import SimResult
from repro.uarch.sim import FrontendSimulator
from repro.validate.invariants import Sanitizer

SMALL = RunnerSettings(trace_instructions=20_000, apps=("wordpress",), sample_rate=1)


def _sanitizer(cycle: float = 123.0) -> Sanitizer:
    san = Sanitizer()
    san.cycle = cycle
    return san


class TestSanitizedPipeline:
    """Every system in the registry runs clean with sanitizers on."""

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_system_runs_clean(self, system):
        runner = ExperimentRunner(SMALL)
        result = runner.run("wordpress", system, config=SimConfig(sanitize=True))
        assert result.cycles > 0

    def test_sanitizer_actually_attached_and_exercised(self, tiny_workload, tiny_trace):
        sim = FrontendSimulator(tiny_workload, config=SimConfig(sanitize=True))
        sim.run(tiny_trace)
        assert sim.sanitizer is not None
        # At least one check per fetch unit, or the wiring is dead.
        assert sim.sanitizer.checks > len(tiny_trace)

    def test_plain_run_has_no_sanitizer(self, tiny_workload, tiny_trace):
        sim = FrontendSimulator(tiny_workload)
        sim.run(tiny_trace)
        assert sim.sanitizer is None


class TestNegativePaths:
    """Corrupted structures must raise, naming structure and cycle."""

    def test_btb_over_occupancy(self):
        btb = BTB(BTBConfig(entries=8, ways=2))
        btb.attach_sanitizer(_sanitizer())
        set_index = 0x10 & btb._set_mask
        # Smuggle a third entry into a 2-way set behind the model's back.
        for pc in (0x10, 0x10 + (btb.config.sets << 2), 0x10 + (btb.config.sets << 3)):
            btb._sets[set_index][pc] = BTBEntry(
                pc=pc, target=pc + 4, kind=BranchKind.UNCOND_DIRECT
            )
        with pytest.raises(InvariantViolation) as exc:
            btb.insert(
                0x10 + (btb.config.sets << 4), 0x99, BranchKind.UNCOND_DIRECT
            )
        assert exc.value.structure == "btb"
        assert exc.value.cycle == 123.0
        assert "associativity" in str(exc.value)

    def test_btb_duplicate_tag(self):
        btb = BTB(BTBConfig(entries=8, ways=4))
        btb.attach_sanitizer(_sanitizer())
        btb.insert(0x20, 0x100, BranchKind.UNCOND_DIRECT)
        set_index = 0x20 & btb._set_mask
        # A second live entry under a different key but the same pc tag.
        alias = 0x20 + (btb.config.sets << 2)
        btb._sets[set_index][alias] = BTBEntry(
            pc=0x20, target=0x200, kind=BranchKind.UNCOND_DIRECT
        )
        with pytest.raises(InvariantViolation) as exc:
            btb.lookup(0x20)
            btb.insert(0x20, 0x100, BranchKind.UNCOND_DIRECT)
        assert exc.value.structure == "btb"

    def test_ras_underflow_corruption(self):
        ras = ReturnAddressStack(4)
        ras.attach_sanitizer(_sanitizer())
        ras.push(0x40)
        ras._depth = -1  # corrupt: below empty
        with pytest.raises(InvariantViolation) as exc:
            ras.pop()
        assert exc.value.structure == "ras"
        assert exc.value.cycle == 123.0
        assert "depth" in str(exc.value)

    def test_prefetch_buffer_recency_corruption(self):
        buf = PrefetchBuffer(4)
        buf.attach_sanitizer(_sanitizer())
        for pc in (0x10, 0x20, 0x30):
            buf.insert(pc, pc + 64, BranchKind.UNCOND_DIRECT, ready_cycle=0)
        # Reorder behind the model's back: oldest entry to the MRU slot.
        buf._entries.move_to_end(0x10)
        with pytest.raises(InvariantViolation) as exc:
            buf.insert(0x40, 0x40 + 64, BranchKind.UNCOND_DIRECT, ready_cycle=0)
        assert exc.value.structure == "prefetch_buffer"

    def test_result_accounting_identity(self):
        result = SimResult(label="corrupt")
        result.instructions = 1000
        result.cycles = 100.0
        result.btb_accesses = 10
        result.btb_misses = 11  # more misses than accesses
        with pytest.raises(InvariantViolation) as exc:
            result.validate()
        assert exc.value.structure == "results"

    def test_result_negative_counter(self):
        result = SimResult(label="corrupt")
        result.cycles = -1.0
        with pytest.raises(InvariantViolation):
            result.validate()


class TestConfigPlumbing:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert SimConfig().sanitize is True
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert SimConfig().sanitize is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert SimConfig().sanitize is False

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(ConfigError):
            sanitize_from_env()

    def test_env_garbage_is_clean_cli_error(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        assert main(["fig03"]) == 2
        assert "REPRO_SANITIZE" in capsys.readouterr().err

    def test_env_garbage_does_not_break_import(self, monkeypatch):
        # DEFAULT_CONFIG is built at import with sanitize pinned off, so
        # the package stays importable under a bad env var.
        import os
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", "import repro; print(repro.DEFAULT_CONFIG.sanitize)"],
            capture_output=True,
            text=True,
            env={**os.environ, "REPRO_SANITIZE": "maybe"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "False"

    def test_with_sanitize(self):
        cfg = SimConfig()
        assert cfg.with_sanitize().sanitize is True
        assert cfg.with_sanitize(False).sanitize is False
        assert cfg.sanitize is False  # original untouched


class TestCacheKeyHygiene:
    def test_signature_includes_sanitize(self):
        plain = _config_signature(SimConfig(sanitize=False))
        sanitized = _config_signature(SimConfig(sanitize=True))
        assert plain != sanitized

    def test_signature_knows_every_simconfig_field(self):
        # Guard: adding a SimConfig field forces a visit to
        # _config_signature (the sanitize bug, generalized).
        assert {f.name for f in dataclasses.fields(SimConfig)} == {
            "core",
            "frontend",
            "memory",
            "twig",
            "ideal_icache",
            "ideal_btb",
            "sanitize",
        }, "new SimConfig field: include it in _config_signature and update this set"

    def test_flipping_sanitize_forces_fresh_simulation(self):
        runner = ExperimentRunner(SMALL)
        runner.run("wordpress", "baseline")
        assert runner.stats.simulations == 1
        runner.run("wordpress", "baseline", config=SimConfig(sanitize=True))
        assert runner.stats.simulations == 2  # no memo crosstalk
        runner.run("wordpress", "baseline")
        runner.run("wordpress", "baseline", config=SimConfig(sanitize=True))
        assert runner.stats.simulations == 2  # both populations memoized

    def test_disk_cache_populations_stay_separate(self, tmp_path):
        writer = ExperimentRunner(SMALL, cache=ResultCache(tmp_path / "cache"))
        plain = writer.run("wordpress", "baseline")
        assert writer.stats.simulations == 1
        # A fresh runner sharing the disk cache: the plain entry must not
        # satisfy the sanitized request.
        reader = ExperimentRunner(SMALL, cache=ResultCache(tmp_path / "cache"))
        reader.run("wordpress", "baseline")
        assert reader.stats.simulations == 0
        assert reader.stats.disk_hits == 1
        sanitized = reader.run(
            "wordpress", "baseline", config=SimConfig(sanitize=True)
        )
        assert reader.stats.simulations == 1
        # Same point, so the counters agree — the *entries* are distinct.
        assert sanitized.cycles == plain.cycles

    def test_sanitize_off_adds_no_simulation_work(self):
        # The acceptance bar: plain runs do the same number of
        # simulations/profiles as before the feature existed.
        runner = ExperimentRunner(SMALL)
        runner.run("wordpress", "twig")
        baseline_stats = dataclasses.replace(runner.stats)
        runner.run("wordpress", "twig")  # memo hit
        assert runner.stats == baseline_stats
