"""The HTTP load harness end-to-end + its report schema
(repro.service.bench load section, repro.bench.schema)."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.schema import validate_service_bench_dict
from repro.errors import BenchError, ReproError
from repro.service.bench import (
    LoadBenchConfig,
    LoadBenchReport,
    SLOConfig,
    evaluate_slo,
    load_report_to_dict,
    run_load,
    save_load_report,
)


@pytest.fixture(scope="module")
def load_run(tmp_path_factory):
    cfg = LoadBenchConfig(
        apps=("wordpress",),
        trace_instructions=4_000,
        clients=3,
        requests_per_client=6,
        arrival_rate_hz=500.0,
        snapshot_every=2,
        seed=11,
    )
    slo = SLOConfig()
    state_dir = str(tmp_path_factory.mktemp("load-state"))
    report = run_load(cfg, slo=slo, state_dir=state_dir)
    return cfg, slo, report, state_dir


class TestLoadRun:
    def test_load_phase_served_requests(self, load_run):
        _cfg, _slo, report, _state = load_run
        assert report.requests == 3 * 6
        assert report.ok > 0
        assert len(report.latencies_ms) == report.ok
        assert report.percentile_ms(0.5) is not None
        assert report.ingest_batches > 0
        assert report.ingest_samples > 0

    def test_recovery_converged(self, load_run):
        _cfg, _slo, report, state_dir = load_run
        assert report.recovery_measured
        assert report.recovery_parity is True
        assert report.recovery_s is not None and report.recovery_s >= 0.0
        # The simulated crash left durable state behind.
        assert os.path.isfile(os.path.join(state_dir, "journal.jsonl"))
        assert report.recovery_snapshot_loaded or (
            report.recovery_batches_replayed > 0
        )

    def test_report_dict_validates(self, load_run):
        cfg, slo, report, _state = load_run
        data = load_report_to_dict(report, cfg, slo)
        validate_service_bench_dict(data)  # raises on any schema break
        assert data["kind"] == "service_bench"
        assert data["outcomes"]["ok"] == report.ok
        assert data["recovery"]["parity"] is True

    def test_save_load_report_is_valid_json_file(self, load_run, tmp_path):
        cfg, slo, report, _state = load_run
        out = str(tmp_path / "BENCH_service.json")
        save_load_report(load_report_to_dict(report, cfg, slo), out)
        with open(out, encoding="utf-8") as fh:
            validate_service_bench_dict(json.load(fh))
        assert not os.path.exists(out + ".tmp")

    def test_save_rejects_invalid_report(self, tmp_path):
        with pytest.raises(BenchError):
            save_load_report(
                {"kind": "service_bench", "schema_version": 1},
                str(tmp_path / "bad.json"),
            )


class TestSLO:
    def make_report(self, **overrides) -> LoadBenchReport:
        report = LoadBenchReport(
            latencies_ms=[1.0, 2.0, 3.0, 4.0, 100.0],
            ok=5,
            recovery_measured=True,
            recovery_s=1.0,
        )
        for name, value in overrides.items():
            setattr(report, name, value)
        return report

    def test_all_objectives_pass(self):
        result = evaluate_slo(self.make_report(), SLOConfig())
        assert result["ok"] is True
        assert all(
            v["ok"] for k, v in result.items() if k != "ok"
        )

    def test_p999_uses_the_tail(self):
        result = evaluate_slo(
            self.make_report(), SLOConfig(p999_ms=50.0)
        )
        assert result["p999_ms"]["actual"] == 100.0
        assert result["p999_ms"]["ok"] is False
        assert result["ok"] is False

    def test_shed_rate_violation(self):
        report = self.make_report(shed=5)
        result = evaluate_slo(report, SLOConfig(max_shed_rate=0.25))
        assert result["shed_rate"]["actual"] == 0.5
        assert result["shed_rate"]["ok"] is False

    def test_unmeasured_recovery_passes_vacuously(self):
        report = self.make_report(recovery_measured=False, recovery_s=None)
        result = evaluate_slo(report, SLOConfig(max_recovery_s=0.001))
        assert result["recovery_s"]["ok"] is True

    def test_no_successes_has_null_percentiles(self):
        report = LoadBenchReport(shed=4)
        result = evaluate_slo(report, SLOConfig())
        assert result["p50_ms"]["actual"] is None
        assert result["p50_ms"]["ok"] is True  # vacuous
        assert result["shed_rate"]["ok"] is False  # 100% shed

    def test_slo_config_validation(self):
        with pytest.raises(ReproError, match="positive"):
            SLOConfig(p50_ms=0)
        with pytest.raises(ReproError, match="max_shed_rate"):
            SLOConfig(max_shed_rate=1.5)


class TestLoadConfigValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ReproError, match="unknown app"):
            LoadBenchConfig(apps=("not-an-app",))

    def test_positive_counts_required(self):
        with pytest.raises(ReproError, match="clients"):
            LoadBenchConfig(clients=0)
        with pytest.raises(ReproError, match="arrival_rate_hz"):
            LoadBenchConfig(arrival_rate_hz=0.0)
