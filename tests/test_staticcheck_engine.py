"""Layer-2 lint engine tests: each rule, suppressions, reporters."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.staticcheck import lint_paths, lint_source_tree
from repro.staticcheck.__main__ import _known_rule_keys
from repro.staticcheck.cfg_checks import CFG_RULES
from repro.staticcheck.engine import ENGINE_RULES, LintEngine, ParsedModule, parse_paths
from repro.staticcheck.findings import (
    Finding,
    Severity,
    exit_code,
    render_json,
    render_text,
    sort_findings,
)
from repro.staticcheck.plan_checks import PLAN_RULES
from repro.staticcheck.rules import LINT_RULES, default_rules
from repro.staticcheck.service_checks import SERVICE_RULES


def lint_snippet(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path], root=tmp_path)


def rules_of(findings):
    return {f.rule for f in findings}


class TestDeterminismRules:
    def test_l101_random_import(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\n")
        assert rules_of(findings) == {"L101"}

    def test_l101_from_import_and_uuid(self, tmp_path):
        findings = lint_snippet(tmp_path, "from random import choice\nimport uuid\n")
        assert [f.rule for f in findings] == ["L101", "L101"]

    def test_l101_allowed_in_rng_home(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\n", name="workloads/rng.py"
        )
        assert findings == []

    def test_l102_wallclock(self, tmp_path):
        src = "import time\n\ndef f():\n    return time.time()\n"
        findings = lint_snippet(tmp_path, src)
        assert rules_of(findings) == {"L102"}
        assert findings[0].line == 4

    def test_l102_sleep_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, "import time\ntime.sleep(1)\n")
        assert findings == []

    def test_l102_allowed_in_bench_clock(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.perf_counter()\n"
        findings = lint_snippet(tmp_path, src, name="bench/clock.py")
        assert findings == []

    def test_l102_flagged_elsewhere_in_bench(self, tmp_path):
        # Only the clock module is allowlisted; the rest of the bench
        # package must route timing through it.
        src = "import time\n\ndef t():\n    return time.perf_counter()\n"
        findings = lint_snippet(tmp_path, src, name="bench/harness.py")
        assert rules_of(findings) == {"L102"}

    def test_l103_for_over_set(self, tmp_path):
        src = "out = []\nfor x in set([3, 1, 2]):\n    out.append(x)\n"
        findings = lint_snippet(tmp_path, src)
        assert rules_of(findings) == {"L103"}

    def test_l103_sorted_set_allowed(self, tmp_path):
        src = "out = []\nfor x in sorted(set([3, 1, 2])):\n    out.append(x)\n"
        assert lint_snippet(tmp_path, src) == []

    def test_l103_order_insensitive_reducer_allowed(self, tmp_path):
        src = "total = sum(x for x in set([1, 2]))\nn = len(set([1, 2]))\n"
        assert lint_snippet(tmp_path, src) == []

    def test_l103_set_comprehension_result_allowed(self, tmp_path):
        # A set built from a set is still unordered: no order leaks.
        src = "evens = {x for x in set([1, 2, 3]) if x % 2 == 0}\n"
        assert lint_snippet(tmp_path, src) == []

    def test_l103_list_comprehension_flagged(self, tmp_path):
        src = "ordered = [x for x in set([1, 2, 3])]\n"
        assert rules_of(lint_snippet(tmp_path, src)) == {"L103"}


class TestEnvironmentRule:
    def test_l104_environ_get(self, tmp_path):
        src = "import os\nv = os.environ.get('X')\n"
        assert rules_of(lint_snippet(tmp_path, src)) == {"L104"}

    def test_l104_getenv_and_subscript(self, tmp_path):
        src = "import os\na = os.getenv('X')\nb = os.environ['X']\n"
        findings = lint_snippet(tmp_path, src)
        assert [f.rule for f in findings] == ["L104", "L104"]

    def test_l104_write_allowed(self, tmp_path):
        src = "import os\nos.environ['X'] = '1'\n"
        assert lint_snippet(tmp_path, src) == []

    def test_l104_allowed_in_config(self, tmp_path):
        src = "import os\nv = os.environ.get('X')\n"
        assert lint_snippet(tmp_path, src, name="repro/config.py") == []


class TestExceptionRule:
    def test_l105_broad_except(self, tmp_path):
        src = "try:\n    pass\nexcept Exception:\n    x = 1\n"
        findings = lint_snippet(tmp_path, src)
        assert rules_of(findings) == {"L105"}

    def test_l105_bare_except(self, tmp_path):
        src = "try:\n    pass\nexcept:\n    x = 1\n"
        assert rules_of(lint_snippet(tmp_path, src)) == {"L105"}

    def test_l105_reraise_allowed(self, tmp_path):
        src = "try:\n    pass\nexcept Exception:\n    raise\n"
        assert lint_snippet(tmp_path, src) == []

    def test_l105_narrow_rescue_allows_broad_fallback(self, tmp_path):
        src = (
            "try:\n"
            "    pass\n"
            "except InvariantViolation:\n"
            "    raise\n"
            "except Exception:\n"
            "    x = 1\n"
        )
        assert lint_snippet(tmp_path, src) == []

    def test_l105_narrow_types_allowed(self, tmp_path):
        src = "try:\n    pass\nexcept (OSError, RuntimeError):\n    x = 1\n"
        assert lint_snippet(tmp_path, src) == []


class TestHygieneRule:
    def test_l106_mutable_defaults(self, tmp_path):
        src = "def f(a=[], b={}, c=set()):\n    return a, b, c\n"
        findings = lint_snippet(tmp_path, src)
        assert [f.rule for f in findings] == ["L106", "L106", "L106"]

    def test_l106_safe_defaults(self, tmp_path):
        src = "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n"
        assert lint_snippet(tmp_path, src) == []


class TestSanitizeCoverageRule:
    def test_l107_frontend_class_without_hook(self, tmp_path):
        src = "class NewBuffer:\n    def insert(self):\n        pass\n"
        findings = lint_snippet(tmp_path, src, name="repro/frontend/newbuf.py")
        assert rules_of(findings) == {"L107"}
        assert findings[0].severity is Severity.WARNING

    def test_l107_hook_present(self, tmp_path):
        src = (
            "class NewBuffer:\n"
            "    def attach_sanitizer(self, s):\n"
            "        pass\n"
        )
        assert lint_snippet(tmp_path, src, name="repro/frontend/newbuf.py") == []

    def test_l107_private_and_dataclass_exempt(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "class _Helper:\n"
            "    pass\n"
            "@dataclass\n"
            "class Entry:\n"
            "    pc: int = 0\n"
        )
        assert lint_snippet(tmp_path, src, name="repro/frontend/newbuf.py") == []

    def test_l107_outside_frontend_ignored(self, tmp_path):
        src = "class NotHardware:\n    pass\n"
        assert lint_snippet(tmp_path, src, name="repro/analysis/x.py") == []

    def test_l107_drift_to_dict_without_from_dict(self, tmp_path):
        src = (
            "class Tracker:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        for scope in ("repro/drift/x.py", "repro/service/x.py"):
            findings = lint_snippet(tmp_path, src, name=scope)
            assert rules_of(findings) == {"L107"}, scope
            assert "from_dict" in findings[0].message

    def test_l107_drift_from_dict_without_to_dict(self, tmp_path):
        src = (
            "class Tracker:\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls()\n"
        )
        findings = lint_snippet(tmp_path, src, name="repro/drift/x.py")
        assert rules_of(findings) == {"L107"}

    def test_l107_drift_matched_pair_and_stateless_clean(self, tmp_path):
        src = (
            "class Tracker:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls()\n"
            "class Stateless:\n"
            "    def score(self):\n"
            "        return 0\n"
        )
        assert lint_snippet(tmp_path, src, name="repro/drift/x.py") == []

    def test_l107_drift_dataclass_not_exempt(self, tmp_path):
        # Unlike the frontend hook check, a dataclass hand-rolling one
        # serialization half is still unrestorable.
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class State:\n"
            "    x: int = 0\n"
            "    def to_dict(self):\n"
            "        return {'x': self.x}\n"
        )
        findings = lint_snippet(tmp_path, src, name="repro/service/x.py")
        assert rules_of(findings) == {"L107"}

    def test_l107_drift_no_sanitizer_requirement(self, tmp_path):
        # attach_sanitizer is a frontend notion; drift classes never
        # need it.
        src = "class Controller:\n    def step(self):\n        pass\n"
        assert lint_snippet(tmp_path, src, name="repro/drift/x.py") == []


class TestSuppressions:
    def test_line_suppression_by_id(self, tmp_path):
        src = "import random  # staticcheck: disable=L101\n"
        assert lint_snippet(tmp_path, src) == []

    def test_line_suppression_by_name(self, tmp_path):
        src = "import random  # staticcheck: disable=no-ambient-rng\n"
        assert lint_snippet(tmp_path, src) == []

    def test_line_suppression_is_per_rule(self, tmp_path):
        # Suppressing one rule does not blanket the line.
        src = "import random  # staticcheck: disable=L104\n"
        assert rules_of(lint_snippet(tmp_path, src)) == {"L101"}

    def test_line_suppression_multiple_rules(self, tmp_path):
        src = "import random, uuid  # staticcheck: disable=L101,L104\n"
        assert lint_snippet(tmp_path, src) == []

    def test_file_suppression(self, tmp_path):
        src = (
            "# staticcheck: disable-file=L101\n"
            "import random\n"
            "from random import choice\n"
        )
        assert lint_snippet(tmp_path, src) == []

    def test_wrong_line_does_not_suppress(self, tmp_path):
        src = "# staticcheck: disable=L101\nimport random\n"
        assert rules_of(lint_snippet(tmp_path, src)) == {"L101"}


class TestReporters:
    def _findings(self):
        return [
            Finding("L101", "no-ambient-rng", Severity.ERROR, "a.py", "boom", line=3),
            Finding("P107", "timeliness", Severity.WARNING, "plan[x]", "late"),
        ]

    def test_sort_errors_first(self):
        ordered = sort_findings(list(reversed(self._findings())))
        assert [f.rule for f in ordered] == ["L101", "P107"]

    def test_exit_code_gating(self):
        findings = self._findings()
        assert exit_code(findings) == 1
        assert exit_code([findings[1]]) == 0
        assert exit_code([findings[1]], strict=True) == 1
        assert exit_code([]) == 0

    def test_render_text_summarizes_warnings(self):
        text = render_text(self._findings())
        assert "a.py:3" in text
        assert "x1" in text  # warning folded into a count line
        assert "1 error(s), 1 warning(s)" in text

    def test_render_json_schema(self):
        doc = json.loads(render_json(self._findings(), extra={"strict": False}))
        assert doc["counts"] == {"error": 1, "warning": 1, "info": 0}
        assert doc["findings"][0]["rule"] == "L101"
        assert doc["strict"] is False


class TestSuppressionEngineEdgeCases:
    def _lint_with_unused(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        engine = LintEngine()
        modules = parse_paths([path], root=tmp_path)
        findings = engine.lint(modules)
        known = _known_rule_keys()
        return findings, engine.unused_suppression_findings(modules, known)

    def test_unknown_rule_id_has_no_effect_and_is_reported(self, tmp_path):
        src = "import random  # staticcheck: disable=L999\n"
        findings, unused = self._lint_with_unused(tmp_path, src)
        assert rules_of(findings) == {"L101"}  # bogus token suppresses nothing
        assert [u.rule for u in unused] == ["U101"]
        assert "not a known rule" in unused[0].message
        assert unused[0].line == 1

    def test_mixed_directives_share_one_line(self, tmp_path):
        src = (
            "import random  "
            "# staticcheck: disable=L101  # staticcheck: disable-file=L104\n"
            "import os\n"
            "v = os.getenv('X')\n"
        )
        findings, unused = self._lint_with_unused(tmp_path, src)
        assert findings == []  # both directives applied
        assert unused == []  # and both matched a finding

    def test_stale_suppression_flagged_live_one_silent(self, tmp_path):
        src = (
            "import random  # staticcheck: disable=L101\n"
            "x = 1  # staticcheck: disable=L106\n"
        )
        findings, unused = self._lint_with_unused(tmp_path, src)
        assert findings == []
        assert [(u.rule, u.line) for u in unused] == [("U101", 2)]
        assert unused[0].severity is Severity.WARNING
        assert "disable=L106" in unused[0].message

    def test_docstring_examples_are_inert(self, tmp_path):
        # Suppression syntax quoted in a docstring neither suppresses
        # nor registers as an unused site.
        src = (
            '"""Use # staticcheck: disable=L101 to waive."""\n'
            "import random\n"
        )
        findings, unused = self._lint_with_unused(tmp_path, src)
        assert rules_of(findings) == {"L101"}
        assert unused == []

    def test_layer3_findings_pass_through_suppression_filter(self, tmp_path):
        src = (
            "import time\n\n"
            "async def tick():\n"
            "    time.sleep(0.1)  # staticcheck: disable=A101 (fixture)\n"
        )
        findings, unused = self._lint_with_unused(
            tmp_path, src, name="repro/service/mini.py"
        )
        assert findings == []
        assert unused == []


class TestRuleInventoryPinned:
    """Adding a rule without cataloging + documenting it fails here."""

    def test_catalog_ids(self):
        assert set(PLAN_RULES) == {f"P10{i}" for i in range(1, 9)}
        assert set(CFG_RULES) == {f"C10{i}" for i in range(1, 6)}
        default_rules()
        assert set(LINT_RULES) == {f"L10{i}" for i in range(1, 8)}
        assert set(SERVICE_RULES) == {f"A10{i}" for i in range(1, 7)}
        assert set(ENGINE_RULES) == {"U101"}

    def test_every_rule_documented(self):
        # A new rule must land with user-facing docs: each id appears
        # literally in README.md or DESIGN.md (ranges don't count).
        repo = Path(__file__).resolve().parent.parent
        docs = (repo / "README.md").read_text() + (repo / "DESIGN.md").read_text()
        default_rules()
        for catalog in (PLAN_RULES, CFG_RULES, LINT_RULES, SERVICE_RULES, ENGINE_RULES):
            for rule in catalog:
                assert rule in docs, f"{rule} missing from README.md/DESIGN.md"


class TestRepoIsClean:
    def test_rule_catalog_registered(self):
        rules = default_rules()
        assert {r.rule for r in rules} == set(LINT_RULES)
        assert len(LINT_RULES) == 7

    def test_source_tree_lints_clean(self):
        findings = lint_source_tree()
        assert findings == [], [f"{f.rule} {f.where()}" for f in findings[:5]]
