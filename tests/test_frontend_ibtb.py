"""Indirect-target BTB: last-target prediction."""

import pytest

from repro.config import BTBConfig
from repro.frontend.ibtb import IndirectBTB


@pytest.fixture()
def ibtb():
    return IndirectBTB(BTBConfig(entries=8, ways=2))


class TestIndirectBTB:
    def test_cold_predicts_none(self, ibtb):
        assert ibtb.predict(0x100) is None
        assert ibtb.misses == 1

    def test_learns_last_target(self, ibtb):
        ibtb.record_outcome(0x100, None, 0x500)
        assert ibtb.predict(0x100) == 0x500

    def test_target_update_on_change(self, ibtb):
        ibtb.record_outcome(0x100, None, 0x500)
        p = ibtb.predict(0x100)
        assert not ibtb.record_outcome(0x100, p, 0x600)
        assert ibtb.predict(0x100) == 0x600

    def test_correct_counted(self, ibtb):
        ibtb.record_outcome(0x100, None, 0x500)
        p = ibtb.predict(0x100)
        ibtb.record_outcome(0x100, p, 0x500)
        assert ibtb.correct == 1

    def test_accuracy(self, ibtb):
        ibtb.record_outcome(0x100, None, 0x500)  # wrong (None)
        p = ibtb.predict(0x100)
        ibtb.record_outcome(0x100, p, 0x500)     # right
        assert 0.0 < ibtb.accuracy() <= 1.0

    def test_capacity_eviction(self, ibtb):
        # Fill one set (2 ways; 4 sets) with three congruent pcs.
        for pc in (0x10, 0x14, 0x18):
            ibtb.record_outcome(pc, None, pc + 1)
        assert ibtb.predict(0x10) is None  # evicted

    def test_monomorphic_site_perfect_after_warm(self, ibtb):
        ibtb.record_outcome(0x40, None, 0x900)
        for _ in range(10):
            p = ibtb.predict(0x40)
            assert ibtb.record_outcome(0x40, p, 0x900)
