"""Layer-1 verifier tests: golden plans pass, seeded defects are caught.

Mutation methodology (ISSUE 4): build the real plan for a workload,
assert it verifies clean, then seed exactly one defect per verifier
rule and assert the finding comes back with the right rule id at the
seeded location.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import pytest

from repro.config import SimConfig
from repro.core.plan import (
    BRCOALESCE_BYTES,
    BRPREFETCH_BYTES,
    InjectionOp,
    OP_COALESCE,
    OP_PREFETCH,
    PrefetchPlan,
)
from repro.core.twig import build_plan
from repro.errors import PlanError, ReproError
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.profiling.collector import collect_profile
from repro.staticcheck import BlockGraph, verify_plan, verify_workload
from repro.staticcheck.findings import Severity, exit_code
from repro.workloads.cfg import KIND_RETURN, build_workload
from repro.workloads.apps import app_names, get_app
from repro.trace.walker import generate_trace


CFG = SimConfig()


@pytest.fixture(scope="module")
def tiny_plan(tiny_workload, tiny_trace):
    profile = collect_profile(tiny_workload, tiny_trace, CFG)
    return build_plan(tiny_workload, profile, CFG)


@pytest.fixture(scope="module")
def graph(tiny_workload):
    return BlockGraph(tiny_workload, fetch_width_bytes=CFG.core.fetch_width_bytes)


def clone(plan: PrefetchPlan) -> PrefetchPlan:
    return copy.deepcopy(plan)


def errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


def rules(findings):
    return {f.rule for f in findings}


def inline_prefetch_ops(plan):
    return [
        op
        for ops in plan.ops_by_block.values()
        for op in ops
        if op.kind == OP_PREFETCH and op.bytes_cost == BRPREFETCH_BYTES
    ]


def coalesce_ops(plan):
    return [
        op for ops in plan.ops_by_block.values() for op in ops if op.kind == OP_COALESCE
    ]


class TestGoldenPlansPass:
    def test_tiny_plan_error_free(self, tiny_plan, tiny_workload, graph):
        findings = verify_plan(tiny_plan, tiny_workload, CFG, graph=graph)
        assert errors(findings) == []
        # Timeliness warnings are expected (dynamic LBR leads include
        # stalls the static shortest path cannot see) and never gate.
        assert exit_code(findings) == 0

    def test_tiny_plan_is_nontrivial(self, tiny_plan):
        # The mutation suite below needs both op kinds and a table.
        assert inline_prefetch_ops(tiny_plan)
        assert coalesce_ops(tiny_plan)
        assert len(tiny_plan.table) > CFG.twig.coalesce_bits

    def test_tiny_workload_cfg_clean(self, tiny_workload):
        assert verify_workload(tiny_workload) == []


class TestSeededDefectsCaught:
    def test_p101_oversized_offset(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        pc, target, kcode = op.entries[0]
        bad = replace(op, entries=((pc, target + (1 << 40), kcode),))
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        hits = [f for f in errors(findings) if f.rule == "P101"]
        assert hits and f"block[{op.block}]" in hits[0].location

    def test_p102_unsorted_table(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        mutant.table = tuple(reversed(mutant.table))
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P102" in rules(errors(findings))

    def test_p102_duplicate_table_entry(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        mutant.table = (mutant.table[0],) + mutant.table
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P102" in rules(errors(findings))

    def test_p103_window_exceeds_bitmask(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = coalesce_ops(mutant)[0]
        # Two genuine table entries whose slot span exceeds the mask.
        far = CFG.twig.coalesce_bits + 5
        bad = replace(op, entries=(mutant.table[0], mutant.table[far]))
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        hits = [f for f in errors(findings) if f.rule == "P103"]
        assert hits and f"block[{op.block}]" in hits[0].location

    def test_p103_entry_not_in_table(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = coalesce_ops(mutant)[0]
        pc, target, kcode = op.entries[0]
        bad = replace(op, entries=((pc, target + 2, kcode),) + op.entries[1:])
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P103" in rules(errors(findings))

    def test_p104_bad_bytes_cost(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        bad = replace(op, bytes_cost=5)
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P104" in rules(errors(findings))

    def test_p104_coalesce_overwide_mask(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        block = coalesce_ops(mutant)[0].block
        # More entries than the bitmask has bits (consecutive slots, so
        # the window rule alone would pass them).
        wide = InjectionOp(
            kind=OP_COALESCE,
            block=block,
            entries=mutant.table[: CFG.twig.coalesce_bits + 1],
            bytes_cost=BRCOALESCE_BYTES,
        )
        mutant.ops_by_block[block].append(wide)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P104" in rules(errors(findings))

    def test_p105_block_out_of_range(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        bad = replace(op, block=tiny_workload.n_blocks + 7)
        mutant.ops_by_block.setdefault(bad.block, []).append(bad)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P105" in rules(errors(findings))

    def test_p105_unreachable_site(self, tiny_plan, tiny_workload, graph):
        # A return block of a never-called function has no successors:
        # nothing is reachable from it.
        dead = [
            i
            for i in range(tiny_workload.n_blocks)
            if tiny_workload.kind_code[i] == KIND_RETURN and not graph.successors[i]
        ]
        assert dead, "tiny workload should contain never-called functions"
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        bad = replace(op, block=dead[0])
        mutant.ops_by_block.setdefault(dead[0], []).append(bad)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        hits = [f for f in errors(findings) if f.rule == "P105"]
        assert hits and any(f"block[{dead[0]}]" in f.location for f in hits)

    def test_p105_self_site(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        pc = op.entries[0][0]
        branch_block = tiny_workload.branch_pc.index(pc)
        bad = replace(op, block=branch_block)
        mutant.ops_by_block.setdefault(branch_block, []).append(bad)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        hits = [f for f in errors(findings) if f.rule == "P105"]
        assert any("own" in f.message for f in hits)

    def test_p106_pc_not_a_terminator(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        pc, target, kcode = op.entries[0]
        bad = replace(op, entries=((pc + 1, target, kcode),))
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P106" in rules(errors(findings))

    def test_p106_wrong_kind(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        pc, target, kcode = op.entries[0]
        bad = replace(op, entries=((pc, target, kcode + 1),))
        ops = mutant.ops_by_block[op.block]
        ops[ops.index(op)] = bad
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P106" in rules(errors(findings))

    def test_p107_too_short_distance(self, tiny_plan, tiny_workload, graph):
        # Seed an op one block before its branch: the static lead is a
        # couple of fetch units, far below prefetch_distance.
        mutant = clone(tiny_plan)
        op = inline_prefetch_ops(mutant)[0]
        pc = op.entries[0][0]
        branch_block = tiny_workload.branch_pc.index(pc)
        preds = [
            b for b in range(tiny_workload.n_blocks)
            if branch_block in graph.successors[b] and b != branch_block
        ]
        assert preds, "branch block should have a predecessor"
        site = preds[0]
        bad = replace(op, block=site)
        mutant.ops_by_block.setdefault(site, []).append(bad)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        hits = [
            f
            for f in findings
            if f.rule == "P107" and f"block[{site}]->block[{branch_block}]" in f.location
        ]
        assert hits
        assert all(f.severity is Severity.WARNING for f in hits)

    def test_p108_coverage_inversion(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        mutant.misses_with_site = mutant.misses_targeted + 1
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P108" in rules(errors(findings))

    def test_p108_misfiled_op(self, tiny_plan, tiny_workload, graph):
        mutant = clone(tiny_plan)
        blocks = sorted(mutant.ops_by_block)
        op = mutant.ops_by_block[blocks[0]][0]
        # File an op under a key that is not its own block.
        mutant.ops_by_block[blocks[1]].append(op)
        findings = verify_plan(mutant, tiny_workload, CFG, graph=graph)
        assert "P108" in rules(errors(findings))


class TestWorkloadMutations:
    def test_c_rules_on_broken_arrays(self, tiny_workload):
        wl = copy.copy(tiny_workload)
        wl.block_start = list(tiny_workload.block_start)
        wl.branch_pc = list(tiny_workload.branch_pc)
        wl.kind_code = list(tiny_workload.kind_code)
        # C103: a terminator pc outside its block.
        idx = next(i for i, pc in enumerate(wl.branch_pc) if pc >= 0)
        wl.branch_pc[idx] = wl.block_start[idx] + wl.block_size[idx] + 4
        found = {f.rule for f in verify_workload(wl)}
        assert "C103" in found

    def test_c104_kind_code_drift(self, tiny_workload):
        wl = copy.copy(tiny_workload)
        wl.kind_code = list(tiny_workload.kind_code)
        idx = next(i for i, k in enumerate(wl.kind_code) if k != 0)
        wl.kind_code[idx] = 0
        found = {f.rule for f in verify_workload(wl)}
        assert "C104" in found


class TestRunnerIntegration:
    """--check-plans / REPRO_CHECK_PLANS wiring in ExperimentRunner."""

    SETTINGS = RunnerSettings(
        trace_instructions=30_000, apps=("wordpress",), sample_rate=1
    )

    def test_env_default_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_PLANS", "1")
        assert ExperimentRunner(self.SETTINGS).check_plans is True
        monkeypatch.setenv("REPRO_CHECK_PLANS", "junk")
        with pytest.raises(ReproError, match="REPRO_CHECK_PLANS"):
            ExperimentRunner(self.SETTINGS)
        # An explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_CHECK_PLANS", "1")
        assert ExperimentRunner(self.SETTINGS, check_plans=False).check_plans is False

    def test_golden_plan_passes_verification(self):
        runner = ExperimentRunner(self.SETTINGS, check_plans=True)
        plan = runner.plan("wordpress")
        assert plan.total_ops() > 0

    def test_malformed_plan_is_refused(self, monkeypatch):
        def bad_build(wl, profile, cfg):
            plan = build_plan(wl, profile, cfg)
            mutant = clone(plan)
            mutant.table = tuple(reversed(mutant.table))
            return mutant

        monkeypatch.setattr("repro.experiments.runner.build_plan", bad_build)
        runner = ExperimentRunner(self.SETTINGS, check_plans=True)
        with pytest.raises(PlanError, match="P102"):
            runner.plan("wordpress")

    def test_verification_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_PLANS", raising=False)
        assert ExperimentRunner(self.SETTINGS).check_plans is False


@pytest.mark.slow
class TestAllAppsGoldenPlansPass:
    """Every paper app's real plan verifies with zero errors."""

    def test_all_nine_apps(self):
        cfg = SimConfig()
        for app in app_names():
            wl = build_workload(get_app(app), seed=0)
            tr = generate_trace(wl, wl.spec.make_input(0), max_instructions=15_000)
            profile = collect_profile(wl, tr, cfg)
            plan = build_plan(wl, profile, cfg)
            assert verify_workload(wl) == [], app
            graph = BlockGraph(wl, fetch_width_bytes=cfg.core.fetch_width_bytes)
            findings = verify_plan(plan, wl, cfg, graph=graph)
            assert errors(findings) == [], (app, errors(findings)[:3])
            # And one seeded defect per app still trips the verifier.
            if plan.table:
                mutant = clone(plan)
                mutant.table = tuple(reversed(mutant.table))
                assert "P102" in rules(
                    errors(verify_plan(mutant, wl, cfg, graph=graph))
                ), app
