"""Extensions beyond the paper's evaluated systems: Boomerang and the
delta-compressed BTB (§5's related-work claims)."""

import pytest

from repro.config import SimConfig
from repro.frontend.compressed_btb import (
    COMPRESSED_DELTA_BITS,
    CompressedBTB,
    compressed_geometry,
)
from repro.isa.branches import BranchKind
from repro.prefetchers.base import BaselineBTBSystem, LOOKUP_COVERED, LOOKUP_MISS
from repro.prefetchers.boomerang import BoomerangBTBSystem
from repro.uarch.sim import simulate
from repro.workloads.cfg import KIND_UNCOND

K = BranchKind.UNCOND_DIRECT


class TestBoomerang:
    def test_predecode_installs_via_buffer(self, tiny_workload):
        boom = BoomerangBTBSystem(tiny_workload, SimConfig())
        br = next(b for b in tiny_workload.binary.branches() if b.kind.is_direct)
        line = br.pc // 64
        boom.on_line_fetched(line, now=100)
        # Too early: line/predecode not finished.
        assert boom.lookup(br.pc, KIND_UNCOND, 100) == LOOKUP_MISS
        assert boom.lookup(br.pc, KIND_UNCOND, 103) == LOOKUP_COVERED

    def test_runs_in_simulator(self, tiny_workload, tiny_trace):
        cfg = SimConfig()
        base = simulate(tiny_workload, tiny_trace, cfg, BaselineBTBSystem(cfg))
        boom = simulate(
            tiny_workload, tiny_trace, cfg, BoomerangBTBSystem(tiny_workload, cfg)
        )
        assert boom.instructions == base.instructions
        assert boom.prefetches_issued > 0

    def test_resident_branches_not_reinserted(self, tiny_workload):
        boom = BoomerangBTBSystem(tiny_workload, SimConfig())
        br = next(iter(tiny_workload.binary.branches()))
        boom.fill(br.pc, br.target, KIND_UNCOND, 0)
        before = boom.buffer.inserts
        boom.on_line_fetched(br.pc // 64, now=10)
        # The demand-resident branch is skipped; others in the line may insert.
        assert br.pc not in boom.buffer or boom.buffer.inserts == before


class TestCompressedGeometry:
    def test_more_total_entries_than_budget(self):
        comp, full = compressed_geometry(8192)
        assert comp.entries + full.entries > 8192

    def test_partitions_are_valid_geometries(self):
        comp, full = compressed_geometry(8192)
        assert comp.sets & (comp.sets - 1) == 0
        assert full.sets & (full.sets - 1) == 0

    def test_small_budget(self):
        comp, full = compressed_geometry(1024)
        assert comp.entries >= 512
        assert full.entries >= 256


class TestCompressedBTB:
    def test_near_target_goes_compressed(self):
        btb = CompressedBTB(1024)
        btb.insert(0x1000, 0x1100, K)
        assert btb.compressed.peek(0x1000) is not None
        assert btb.full.peek(0x1000) is None

    def test_far_target_goes_full(self):
        btb = CompressedBTB(1024)
        far = 0x1000 + (1 << (COMPRESSED_DELTA_BITS + 4))
        btb.insert(0x1000, far, K)
        assert btb.full.peek(0x1000) is not None

    def test_lookup_probes_both(self):
        btb = CompressedBTB(1024)
        btb.insert(0x1000, 0x1100, K)
        btb.insert(0x2000, 0x2000 + (1 << 20), K)
        assert btb.lookup(0x1000) is not None
        assert btb.lookup(0x2000) is not None
        assert btb.hits == 2

    def test_counters(self):
        btb = CompressedBTB(1024)
        btb.lookup(0x999)
        assert btb.misses == 1

    def test_holds_more_than_uncompressed_budget(self, tiny_workload, tiny_trace):
        """The point of compression: fewer misses in equal storage."""
        cfg = SimConfig().with_btb(entries=1024)
        plain = simulate(tiny_workload, tiny_trace, cfg, BaselineBTBSystem(cfg))
        comp = simulate(
            tiny_workload,
            tiny_trace,
            cfg,
            BaselineBTBSystem(cfg, btb=CompressedBTB(1024)),
        )
        assert comp.btb_misses <= plain.btb_misses

    def test_twig_composes_with_compressed_btb(self, tiny_workload, tiny_trace):
        """§5: Twig 'should be just as effective' on a compressed BTB."""
        from repro.core.twig import build_plan
        from repro.profiling.collector import collect_profile

        cfg = SimConfig().with_btb(entries=512)
        profile = collect_profile(tiny_workload, tiny_trace, cfg)
        plan = build_plan(tiny_workload, profile, cfg)

        base_sys = BaselineBTBSystem(cfg, btb=CompressedBTB(512))
        base = simulate(tiny_workload, tiny_trace, cfg, base_sys)
        twig_sys = BaselineBTBSystem(cfg, btb=CompressedBTB(512))
        twig_sys.install_ops(plan.sim_ops())
        twig = simulate(tiny_workload, tiny_trace, cfg, twig_sys)
        assert twig.btb_covered_misses > 0
        assert twig.btb_mpki() <= base.btb_mpki()
