"""Paper-recorded table data and table computations."""

import pytest

from repro.experiments.tables import PAPER_TABLE2, PAPER_TABLE3
from repro.workloads.apps import app_names


class TestPaperTables:
    def test_table2_covers_all_apps(self):
        assert set(PAPER_TABLE2) == set(app_names())

    def test_table3_covers_all_apps(self):
        assert set(PAPER_TABLE3) == set(app_names())

    def test_table2_verilator_highest_and_stable(self):
        assert PAPER_TABLE2["verilator"]["same"] == max(
            v["same"] for v in PAPER_TABLE2.values()
        )

    def test_table3_overhead_consistent_with_sizes(self):
        for app, row in PAPER_TABLE3.items():
            derived = 100.0 * row["extra_mb"] / row["wss_mb"]
            assert derived == pytest.approx(row["overhead_pct"], abs=0.4)

    def test_table3_average_is_papers_six_percent(self):
        mean = sum(v["overhead_pct"] for v in PAPER_TABLE3.values()) / 9
        assert mean == pytest.approx(5.12, abs=1.2)
