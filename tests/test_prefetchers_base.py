"""Baseline BTB system + software-op integration."""

import pytest

from repro.config import SimConfig
from repro.prefetchers.base import (
    BaselineBTBSystem,
    BTBSystem,
    LOOKUP_COVERED,
    LOOKUP_HIT,
    LOOKUP_MISS,
)
from repro.workloads.cfg import KIND_COND, KIND_UNCOND


@pytest.fixture()
def system():
    return BaselineBTBSystem(SimConfig())


class TestLookupSemantics:
    def test_cold_miss(self, system):
        assert system.lookup(0x100, KIND_UNCOND, 0) == LOOKUP_MISS

    def test_fill_then_hit(self, system):
        system.fill(0x100, 0x200, KIND_UNCOND, 0)
        assert system.lookup(0x100, KIND_UNCOND, 1) == LOOKUP_HIT

    def test_covered_via_software_op(self, system):
        system.install_ops({5: (((0x100, 0x200, KIND_UNCOND),), 1, 1)})
        assert 5 in system.ops_blocks
        extra, n_ops = system.on_block_fetched(5, now=10)
        assert (extra, n_ops) == (1, 1)
        # Before the execute latency elapses the entry is not usable.
        assert system.lookup(0x100, KIND_UNCOND, 11) == LOOKUP_MISS
        latency = SimConfig().twig.prefetch_execute_latency
        assert system.lookup(0x100, KIND_UNCOND, 10 + latency) == LOOKUP_COVERED

    def test_covered_entry_promoted_to_btb(self, system):
        system.install_ops({5: (((0x100, 0x200, KIND_UNCOND),), 1, 1)})
        system.on_block_fetched(5, now=0)
        system.lookup(0x100, KIND_UNCOND, 100)   # covered, promoted
        assert system.lookup(0x100, KIND_UNCOND, 101) == LOOKUP_HIT

    def test_ops_on_unrelated_block_noop(self, system):
        assert system.on_block_fetched(99, now=0) == (0, 0)

    def test_prefetch_counters(self, system):
        system.install_ops({5: (((0x100, 0x200, KIND_UNCOND),), 1, 1)})
        system.on_block_fetched(5, now=0)
        assert system.prefetches_issued() == 1
        system.lookup(0x100, KIND_UNCOND, 50)
        assert system.prefetches_used() == 1

    def test_multiple_entries_per_block(self, system):
        entries = tuple((0x100 + i * 8, 0x900, KIND_COND) for i in range(4))
        system.install_ops({7: (entries, 2, 2)})
        system.on_block_fetched(7, now=0)
        covered = sum(
            system.lookup(pc, KIND_COND, 100) == LOOKUP_COVERED
            for pc, _, _ in entries
        )
        assert covered == 4


class TestInterface:
    def test_abstract_lookup_raises(self):
        with pytest.raises(NotImplementedError):
            BTBSystem().lookup(0, 0, 0)

    def test_default_hooks_are_noops(self):
        s = BTBSystem()
        s.on_taken_branch(0, 0, 0, 0)
        s.on_line_fetched(0, 0)
        assert s.on_block_fetched(0, 0) == (0, 0)
        assert s.ops_blocks == frozenset()
        assert s.prefetches_issued() == 0
