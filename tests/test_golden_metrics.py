"""Golden-metrics regression gate for the simulator.

``tests/data/golden_metrics.json`` pins baseline/Twig metrics for two
apps at a short trace length.  Any change to the workload generator,
the timing model, the profiler, or the plan builder that shifts these
numbers fails this test loudly — silent simulator drift is exactly what
an on-disk result cache must never paper over.

If a change *intentionally* alters simulator output, regenerate the
goldens and commit the new file::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_golden_metrics.py
"""

import json
import os

import pytest

from repro.experiments.runner import ExperimentRunner, RunnerSettings

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_metrics.json")
APPS = ("wordpress", "drupal")
SETTINGS = RunnerSettings(trace_instructions=60_000, apps=APPS, sample_rate=1)


def _measure() -> dict:
    runner = ExperimentRunner(SETTINGS)
    metrics = {}
    for app in APPS:
        base = runner.run(app, "baseline")
        twig = runner.run(app, "twig")
        metrics[app] = {
            "baseline_btb_mpki": base.btb_mpki(),
            "baseline_ipc": base.ipc(),
            "twig_btb_mpki": twig.btb_mpki(),
            "twig_ipc": twig.ipc(),
            "twig_speedup_pct": twig.speedup_over(base),
            "twig_coverage": twig.coverage(),
        }
    return metrics


def test_golden_metrics():
    measured = _measure()
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(measured, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip(f"goldens regenerated at {GOLDEN_PATH}")
    assert os.path.exists(GOLDEN_PATH), (
        f"golden metrics file missing; regenerate with "
        f"REPRO_UPDATE_GOLDENS=1 (expected at {GOLDEN_PATH})"
    )
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    assert set(measured) == set(golden)
    for app in APPS:
        for metric, expected in golden[app].items():
            assert measured[app][metric] == pytest.approx(
                expected, rel=1e-12, abs=1e-12
            ), (
                f"{app}.{metric} drifted: measured {measured[app][metric]!r} "
                f"vs golden {expected!r}; if intentional, regenerate with "
                f"REPRO_UPDATE_GOLDENS=1"
            )
