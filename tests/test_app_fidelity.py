"""Fidelity checks on one full-scale paper application.

These run a real (not tiny) app at reduced trace length, pinning the
workload properties every figure depends on. Kept to a single app so
the suite stays fast; the benchmark suite exercises all nine.
"""

import pytest

from repro.config import SimConfig
from repro.prefetchers.base import BaselineBTBSystem
from repro.trace.walker import generate_trace
from repro.uarch.sim import FrontendSimulator
from repro.workloads.apps import get_app
from repro.workloads.cfg import build_workload


@pytest.fixture(scope="module")
def cassandra():
    spec = get_app("cassandra")
    wl = build_workload(spec, seed=0)
    tr = generate_trace(wl, spec.make_input(0), max_instructions=300_000)
    return spec, wl, tr


class TestCassandraFidelity:
    def test_footprint_exceeds_btb(self, cassandra):
        """The premise of the whole paper: more live branches than BTB
        entries."""
        _, _, tr = cassandra
        assert tr.stats.unique_branches > 8192

    def test_branch_density_realistic(self, cassandra):
        _, _, tr = cassandra
        per_ki = 1000 * tr.stats.dynamic_branches / tr.stats.instructions
        assert 100 < per_ki < 350  # roughly a branch every 3-10 instructions

    def test_baseline_mpki_band(self, cassandra):
        _, wl, tr = cassandra
        cfg = SimConfig()
        res = FrontendSimulator(wl, cfg, BaselineBTBSystem(cfg)).run(
            tr, warmup_units=len(tr) // 3
        )
        # Fig 3 band: meaningful double-digit-ish MPKI for cassandra.
        assert 4.0 < res.btb_mpki() < 80.0

    def test_footprint_recurs_within_window(self, cassandra):
        """Misses must be capacity churn, not one-shot cold code."""
        import collections

        _, _, tr = cassandra
        counts = collections.Counter(tr.blocks)
        import statistics

        med = statistics.median(counts.values())
        assert med >= 2, "median block should execute multiple times"

    def test_text_footprint_megabyte_scale(self, cassandra):
        _, wl, _ = cassandra
        mb = wl.binary.text_bytes() / (1024 * 1024)
        assert 0.3 < mb < 20.0
