"""Telemetry subsystem: registry math, JSONL sink, report aggregation.

Pins the three contracts of ``repro.telemetry``:

* the metrics registry snapshot/diff/merge round trip used to ship
  per-worker deltas across the process pool;
* the JSONL sink's event format (whole appended lines, schema fields,
  span timing) and its zero-cost-when-off wiring in the runner;
* the report: per-phase wall time, pool-wide cache hit-rate math, and
  per-process request counts, on both synthetic and real logs.
"""

import json
import os

import pytest

from repro.errors import ReproError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.telemetry import (
    PHASES,
    MetricsRegistry,
    TelemetrySink,
    format_report,
    read_events,
    render_report,
    summarize,
    telemetry_from_env,
)

SETTINGS = RunnerSettings(trace_instructions=30_000, apps=("wordpress",), sample_rate=1)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.counters["x"] == 5

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 1)
        assert reg.gauges["depth"] == 1

    def test_timer_records_total_and_count(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        total, count = reg.timers["t"]
        assert count == 2 and total >= 0.0

    def test_snapshot_is_decoupled(self):
        reg = MetricsRegistry()
        reg.inc("x")
        snap = reg.snapshot()
        reg.inc("x")
        assert snap["counters"]["x"] == 1
        # And JSON-serializable (it crosses the process boundary).
        json.dumps(snap)

    def test_diff_reports_only_the_delta(self):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        reg.add_time("t", 1.0)
        before = reg.snapshot()
        reg.inc("x", 2)
        reg.inc("y")
        reg.add_time("t", 0.5)
        delta = reg.diff(before)
        assert delta["counters"] == {"x": 2, "y": 1}
        assert delta["timers"]["t"]["count"] == 1
        assert delta["timers"]["t"]["total_s"] == pytest.approx(0.5)

    def test_diff_without_baseline_is_full_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("x")
        assert reg.diff(None)["counters"] == {"x": 1}

    def test_merge_adds_counters_and_timers(self):
        a = MetricsRegistry()
        a.inc("x", 1)
        a.add_time("t", 1.0)
        b = MetricsRegistry()
        b.inc("x", 2)
        b.inc("y", 7)
        b.add_time("t", 0.25)
        b.set_gauge("g", 9)
        a.merge(b.snapshot())
        assert a.counters == {"x": 3, "y": 7}
        assert a.timers["t"] == [1.25, 2]
        assert a.gauges["g"] == 9

    def test_merge_none_is_a_noop(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.merge(None)
        assert reg.counters == {"x": 1}

    def test_pool_roundtrip(self):
        """snapshot -> work -> diff -> merge reproduces the worker's delta."""
        worker = MetricsRegistry()
        worker.inc("sim.runs", 5)  # pre-existing state from earlier requests
        before = worker.snapshot()
        worker.inc("sim.runs")
        worker.inc("cache.hits", 2)
        parent = MetricsRegistry()
        parent.merge(worker.diff(before))
        assert parent.counters == {"sim.runs": 1, "cache.hits": 2}


class TestTelemetrySink:
    def _sink(self, tmp_path):
        return TelemetrySink(str(tmp_path / "tel.jsonl"))

    def test_empty_path_rejected(self):
        with pytest.raises(ReproError):
            TelemetrySink("")

    def test_emit_writes_schema_fields(self, tmp_path):
        sink = self._sink(tmp_path)
        sink.emit("probe", answer=42)
        sink.close()
        (ev,) = read_events(sink.path)
        assert ev["event"] == "probe" and ev["answer"] == 42
        assert ev["v"] == 1 and ev["pid"] == os.getpid() and "ts" in ev

    def test_span_times_phase_and_emits_event(self, tmp_path):
        sink = self._sink(tmp_path)
        with sink.span("simulate", app="wordpress", system="twig"):
            pass
        sink.close()
        (ev,) = read_events(sink.path)
        assert ev["event"] == "span" and ev["phase"] == "simulate"
        assert ev["app"] == "wordpress" and ev["duration_s"] >= 0.0
        assert sink.registry.timers["phase.simulate"][1] == 1

    def test_record_worker_counts_and_merges(self, tmp_path):
        sink = self._sink(tmp_path)
        sink.record_worker(1234, {"counters": {"sim.runs": 3}})
        sink.record_worker(1234, None)
        assert sink.registry.counters["worker.1234.requests"] == 2
        assert sink.registry.counters["sim.runs"] == 3

    def test_emit_summary_carries_cache_stats(self, tmp_path):
        sink = self._sink(tmp_path)
        sink.registry.inc("sim.runs")
        cache = ResultCache(str(tmp_path / "cache"))
        cache.stats.hits = 3
        sink.emit_summary(cache_stats=cache.stats)
        sink.close()
        (ev,) = read_events(sink.path)
        assert ev["event"] == "summary"
        assert ev["metrics"]["counters"]["sim.runs"] == 1
        assert ev["cache"]["hits"] == 3

    def test_telemetry_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_from_env() is None
        path = str(tmp_path / "tel.jsonl")
        monkeypatch.setenv("REPRO_TELEMETRY", path)
        sink = telemetry_from_env()
        assert sink is not None and sink.path == path
        sink.close()


def _span(phase, pid=100, duration=1.0, **fields):
    ev = {"v": 1, "event": "span", "phase": phase, "duration_s": duration,
          "ts": 0.0, "pid": pid}
    ev.update(fields)
    return ev


class TestReport:
    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(ReproError):
            read_events(str(tmp_path / "absent.jsonl"))

    def test_malformed_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        path.write_text(
            json.dumps(_span("simulate")) + "\n"
            + '{"torn line\n'
            + "[1, 2, 3]\n"
        )
        events = read_events(str(path))
        assert sum(1 for e in events if e["event"] == "span") == 1
        assert {"event": "_malformed", "count": 2} in events
        report = format_report(summarize(events))
        assert "2 malformed log line(s)" in report

    def test_phase_and_group_aggregation(self):
        events = [
            _span("simulate", duration=2.0, app="wordpress", system="twig"),
            _span("simulate", duration=1.0, app="wordpress", system="twig"),
            _span("trace_gen", duration=0.5, app="wordpress"),
        ]
        s = summarize(events)
        assert s["phases"]["simulate"] == {"count": 2, "total_s": 3.0}
        assert s["by_group"]["wordpress/twig"]["simulate"] == 3.0
        assert s["by_group"]["wordpress/-"]["trace_gen"] == 0.5

    def test_cache_hit_rate_from_events(self):
        events = (
            [{"event": "cache_load", "outcome": "hit"}] * 3
            + [{"event": "cache_load", "outcome": "miss"}]
            + [{"event": "cache_load", "outcome": "corrupt"}]
            + [{"event": "cache_store"}] * 2
            + [{"event": "cache_quarantine", "deleted": False}]
            + [{"event": "cache_quarantine", "deleted": True}]
        )
        cache = summarize(events)["cache"]
        assert cache["hits"] == 3 and cache["misses"] == 2
        assert cache["hit_rate"] == pytest.approx(0.6)
        assert cache["stores"] == 2
        assert cache["quarantined"] == 1 and cache["quarantine_deleted"] == 1

    def test_summary_cache_is_only_a_fallback(self):
        # With per-op events present, the (parent-only) summary stats
        # must not override the pool-wide event counts.
        events = [
            {"event": "cache_load", "outcome": "hit"},
            {"event": "summary", "pid": 1,
             "metrics": {"counters": {}},
             "cache": {"hits": 0, "misses": 0, "stores": 0, "quarantined": 0}},
        ]
        assert summarize(events)["cache"]["hits"] == 1
        # Without events, the summary stats are used.
        only_summary = [events[1]]
        assert summarize(only_summary)["cache"]["hits"] == 0

    def test_worker_requests_sum_across_processes_not_runs(self):
        # Two summaries from the same pid (two runs appending to one
        # log): the registry is cumulative per process, so the *last*
        # one wins; distinct pids add.
        events = [
            {"event": "summary", "pid": 1,
             "metrics": {"counters": {"worker.50.requests": 2}}},
            {"event": "summary", "pid": 1,
             "metrics": {"counters": {"worker.50.requests": 5}}},
            {"event": "summary", "pid": 2,
             "metrics": {"counters": {"worker.60.requests": 1,
                                      "parallel.retries": 1}}},
        ]
        s = summarize(events)
        assert s["workers"][50]["requests"] == 5
        assert s["workers"][60]["requests"] == 1
        assert s["parallel"]["retries"] == 1

    def test_format_report_sections(self):
        events = [
            _span("simulate", duration=1.0, app="wordpress", system="baseline"),
            {"event": "cache_load", "outcome": "hit"},
        ]
        report = format_report(summarize(events))
        assert "per-phase wall time" in report
        assert "simulate" in report
        assert "hit rate 100.0%" in report
        assert "pool: 0 retried request(s), 0 serial fallback(s)" in report

    def test_per_pid_serving_pressure_rows(self):
        # Pin the worker-row schema from both sources: a fleet worker's
        # own summary (service.shed counter + service.max_queue_depth
        # gauge) and the router's outside view shipped as
        # fleet.worker.<pid>.* counters/gauges.  Every row must carry
        # the full schema even when a pid saw no queue pressure.
        events = [
            {"event": "summary", "pid": 71,
             "metrics": {"counters": {"service.shed": 4},
                         "gauges": {"service.max_queue_depth": 9}}},
            {"event": "summary", "pid": 1,
             "metrics": {"counters": {"fleet.worker.71.shed": 2,
                                      "fleet.worker.71.requests": 30,
                                      "fleet.worker.72.shed": 1,
                                      "fleet.worker.72.requests": 11},
                         "gauges": {"fleet.worker.72.max_queue_depth": 5}}},
            {"event": "summary", "pid": 2,
             "metrics": {"counters": {"worker.80.requests": 3}}},
        ]
        workers = summarize(events)["workers"]
        # Both views of pid 71 merge: sheds add, depth is a high-water.
        assert workers[71] == {
            "requests": 30, "busy_s": 0.0, "shed": 6, "max_queue_depth": 9,
        }
        assert workers[72] == {
            "requests": 11, "busy_s": 0.0, "shed": 1, "max_queue_depth": 5,
        }
        # A pid with no serving pressure still has the full row schema.
        assert workers[80] == {
            "requests": 3, "busy_s": 0.0, "shed": 0, "max_queue_depth": 0,
        }
        report = format_report(summarize(events))
        assert "shed=6" in report
        assert "maxq=9" in report
        assert "shed/maxq = serving pressure" in report


class TestRunnerIntegration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert ExperimentRunner(SETTINGS).telemetry is None

    def test_serial_run_emits_all_five_phases(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        cache = ResultCache(str(tmp_path / "cache"))
        runner = ExperimentRunner(
            SETTINGS, cache=cache, telemetry=TelemetrySink(path)
        )
        # baseline covers build/trace/simulate; twig adds profile+plan.
        runner.run("wordpress", "baseline")
        runner.run("wordpress", "twig")
        runner.telemetry.emit_summary(
            cache_stats=cache.stats, runner_stats=runner.stats
        )
        runner.telemetry.close()

        summary = summarize(read_events(path))
        for phase in PHASES:
            assert phase in summary["phases"], f"missing span for {phase}"
        # Cold cache: every load missed, every artifact was stored.
        assert summary["cache"]["misses"] > 0
        assert summary["cache"]["stores"] > 0
        assert summary["cache"]["hits"] == 0
        report = format_report(summary)
        assert "wordpress/twig" in report

    def test_warm_cache_hits_show_up_in_report(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        cache_dir = str(tmp_path / "cache")
        cold = ExperimentRunner(SETTINGS, cache=ResultCache(cache_dir))
        cold.run("wordpress", "baseline")
        warm = ExperimentRunner(
            SETTINGS,
            cache=ResultCache(cache_dir),
            telemetry=TelemetrySink(path),
        )
        warm.run("wordpress", "baseline")
        warm.telemetry.close()
        cache = summarize(read_events(path))["cache"]
        assert cache["hits"] > 0
        assert cache["hit_rate"] > 0.0

    def test_sim_counters_recorded_once_per_run(self, tmp_path):
        runner = ExperimentRunner(
            SETTINGS, telemetry=TelemetrySink(str(tmp_path / "tel.jsonl"))
        )
        result = runner.run("wordpress", "baseline")
        counters = runner.telemetry.registry.counters
        runner.telemetry.close()
        assert counters["sim.runs"] == 1
        assert counters["sim.instructions"] == result.instructions
        assert counters["sim.btb_misses"] == result.btb_misses

    @pytest.mark.slow
    def test_pool_workers_feed_one_log(self, monkeypatch, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        # Via the environment, as --telemetry does: workers inherit it.
        monkeypatch.setenv("REPRO_TELEMETRY", path)
        runner = ExperimentRunner(SETTINGS, jobs=2)
        assert runner.telemetry is not None
        runner.warm(
            [("wordpress", "baseline"), ("wordpress", "ideal_btb")], jobs=2
        )
        runner.telemetry.emit_summary(runner_stats=runner.stats)
        runner.telemetry.close()

        summary = summarize(read_events(path))
        # Every pool request was recorded against some worker pid.
        total_requests = sum(w["requests"] for w in summary["workers"].values())
        assert total_requests == 2
        # Worker-side spans landed in the shared log.
        assert summary["phases"].get("simulate", {}).get("count", 0) >= 2


class TestCLI:
    @pytest.fixture()
    def small_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_APPS", "wordpress")
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "60000")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_GLOBAL_RUNNER", None)
        return tmp_path

    def test_telemetry_flag_then_report(self, capsys, small_env):
        from repro.experiments.__main__ import main

        log = str(small_env / "run.jsonl")
        assert main(["fig03", "--telemetry", log]) == 0
        out = capsys.readouterr().out
        assert f"telemetry: {log}" in out
        assert os.path.isfile(log)

        assert main(["telemetry-report", log]) == 0
        report = capsys.readouterr().out
        assert "per-phase wall time" in report
        assert "simulate" in report
        assert "cache:" in report

    def test_report_without_path_is_a_clean_error(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert main(["telemetry-report"]) == 2
        assert "needs a log path" in capsys.readouterr().err

    def test_report_missing_file_is_a_clean_error(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["telemetry-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tools_wrapper(self, capsys, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "telemetry_report_tool",
            os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "tools",
                "telemetry_report.py",
            ),
        )
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)

        sink = TelemetrySink(str(tmp_path / "tel.jsonl"))
        with sink.span("simulate", app="wordpress", system="baseline"):
            pass
        sink.close()
        assert tool.main([sink.path]) == 0
        assert "per-phase wall time" in capsys.readouterr().out
        assert tool.main([str(tmp_path / "missing.jsonl")]) == 2


class TestZeroOverheadContract:
    def test_render_report_roundtrip(self, tmp_path):
        sink = TelemetrySink(str(tmp_path / "tel.jsonl"))
        with sink.span("plan_build", app="wordpress", input=0):
            pass
        sink.close()
        assert "plan_build" in render_report(sink.path)

    def test_config_rejects_directory_path(self, monkeypatch, tmp_path):
        from repro.config import telemetry_path_from_env
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path))
        with pytest.raises(ConfigError):
            telemetry_path_from_env()

    def test_blank_env_means_off(self, monkeypatch):
        from repro.config import telemetry_path_from_env

        monkeypatch.setenv("REPRO_TELEMETRY", "  ")
        assert telemetry_path_from_env() is None
