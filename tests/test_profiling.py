"""LBR recording, miss sampling, and profile containers."""

import pytest

from repro.config import SimConfig
from repro.errors import ProfileError
from repro.profiling.collector import collect_profile
from repro.profiling.lbr import LBRRecorder
from repro.profiling.profile import MissProfile


class TestLBRRecorder:
    def test_snapshot_orders_oldest_first(self):
        prof = MissProfile()
        rec = LBRRecorder(prof, depth=4)
        for i in range(3):
            rec.record(block=i, cycle=float(i * 10))
        window = rec.snapshot(miss_cycle=100.0)
        assert [b for b, _ in window] == [0, 1, 2]
        assert [d for _, d in window] == [100.0, 90.0, 80.0]

    def test_ring_wraps(self):
        prof = MissProfile()
        rec = LBRRecorder(prof, depth=3)
        for i in range(5):
            rec.record(i, float(i))
        window = rec.snapshot(10.0)
        assert [b for b, _ in window] == [2, 3, 4]

    def test_depth_default_32(self):
        rec = LBRRecorder(MissProfile())
        assert rec.depth == 32

    def test_on_miss_stores_sample(self):
        prof = MissProfile()
        rec = LBRRecorder(prof)
        rec.record(1, 1.0)
        rec.on_miss(pc=0x100, block=5, cycle=9.0)
        assert prof.miss_count(0x100) == 1
        sample = prof.samples_for(0x100)[0]
        assert sample.miss_block == 5
        assert sample.window[0] == (1, 8.0)

    def test_sampling_rate(self):
        prof = MissProfile()
        rec = LBRRecorder(prof, sample_rate=3)
        for i in range(9):
            rec.on_miss(0x100, 1, float(i))
        assert prof.miss_count(0x100) == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LBRRecorder(MissProfile(), sample_rate=0)
        with pytest.raises(ValueError):
            LBRRecorder(MissProfile(), depth=0)


class TestMissProfile:
    def test_heaviest_first(self):
        prof = MissProfile()
        for _ in range(3):
            prof.add_sample(0xA, 1, ((1, 30.0),))
        prof.add_sample(0xB, 2, ((2, 30.0),))
        assert prof.miss_pcs() == [0xA, 0xB]

    def test_block_occurrences(self):
        prof = MissProfile()
        prof.add_sample(0xA, 1, ((7, 30.0), (8, 25.0)))
        prof.add_sample(0xB, 2, ((7, 30.0),))
        assert prof.block_occurrences[7] == 2
        assert prof.block_occurrences[8] == 1

    def test_merge(self):
        a, b = MissProfile("x", "0"), MissProfile("x", "1")
        a.add_sample(0xA, 1, ((1, 30.0),))
        b.add_sample(0xA, 1, ((2, 30.0),))
        b.add_sample(0xB, 2, ((3, 30.0),))
        merged = a.merge(b, allow_mixed_inputs=True)
        assert merged.miss_count(0xA) == 2
        assert merged.total_samples == 3
        assert merged.input_label == "0+1"
        merged.validate()

    def test_merge_same_input_keeps_label(self):
        a, b = MissProfile("x", "0"), MissProfile("x", "0")
        a.add_sample(0xA, 1, ((1, 30.0),))
        b.add_sample(0xB, 2, ((2, 30.0),))
        merged = a.merge(b)
        assert merged.input_label == "0"
        assert merged.total_samples == 2

    def test_merge_rejects_mismatched_app(self):
        a, b = MissProfile("x", "0"), MissProfile("y", "0")
        a.add_sample(0xA, 1, ((1, 30.0),))
        b.add_sample(0xA, 1, ((1, 30.0),))
        with pytest.raises(ProfileError, match="different apps"):
            a.merge(b)
        # Mixed-input permission does not excuse mixed apps.
        with pytest.raises(ProfileError, match="different apps"):
            a.merge(b, allow_mixed_inputs=True)

    def test_merge_rejects_mismatched_input_by_default(self):
        a, b = MissProfile("x", "0"), MissProfile("x", "1")
        a.add_sample(0xA, 1, ((1, 30.0),))
        b.add_sample(0xA, 1, ((1, 30.0),))
        with pytest.raises(ProfileError, match="allow_mixed_inputs"):
            a.merge(b)

    def test_validate_detects_corruption(self):
        prof = MissProfile()
        prof.add_sample(0xA, 1, ((1, 30.0),))
        prof.total_samples = 99
        with pytest.raises(ProfileError):
            prof.validate()

    def test_len(self):
        prof = MissProfile()
        assert len(prof) == 0
        prof.add_sample(0xA, 1, ())
        assert len(prof) == 1


class TestCollector:
    def test_collect_on_tiny_workload(self, tiny_workload, tiny_trace):
        prof = collect_profile(tiny_workload, tiny_trace, SimConfig())
        assert len(prof) > 0
        assert prof.app_name == "tinyapp"
        prof.validate()
        # Every sampled miss PC is a real branch PC.
        pcs = set(tiny_workload.branch_pc)
        for pc in prof.miss_pcs():
            assert pc in pcs

    def test_sampling_reduces_samples(self, tiny_workload, tiny_trace):
        dense = collect_profile(tiny_workload, tiny_trace, SimConfig(), sample_rate=1)
        sparse = collect_profile(tiny_workload, tiny_trace, SimConfig(), sample_rate=4)
        assert len(sparse) < len(dense)
        assert len(sparse) >= len(dense) // 5

    def test_windows_have_positive_leads(self, tiny_workload, tiny_trace):
        prof = collect_profile(tiny_workload, tiny_trace, SimConfig())
        pc = prof.miss_pcs()[0]
        for sample in prof.samples_for(pc)[:5]:
            leads = [lead for _, lead in sample.window]
            assert all(lead >= 0 for lead in leads)
            # Oldest-first: leads decrease monotonically.
            assert all(a >= b for a, b in zip(leads, leads[1:]))
