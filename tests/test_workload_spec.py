"""AppSpec validation, scaling, and input derivation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.apps import PAPER_APPS, app_names, get_app
from repro.workloads.spec import AppSpec, validate_mix
from tests.conftest import make_tiny_spec


class TestAppSpec:
    def test_tiny_spec_valid(self):
        spec = make_tiny_spec()
        assert spec.functions == 120

    def test_rejects_too_few_functions(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec(functions=1)

    def test_rejects_bad_mix_sum(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec(branch_mix={"cond_direct": 0.5})

    def test_rejects_unknown_mix_kind(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec(branch_mix={"cond_direct": 0.5, "banana": 0.5})

    def test_rejects_bad_dispatch_pattern(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec(dispatch_pattern="roundrobin")

    @pytest.mark.parametrize("bad", [1.0, 1.5, -0.1])
    def test_rejects_out_of_range_sweep_skip_prob(self, bad):
        # Strictly below 1.0: the sweep walker retries while the skip
        # test passes, so probability 1.0 would loop forever.
        with pytest.raises(WorkloadError, match="sweep_skip_prob"):
            make_tiny_spec(sweep_skip_prob=bad)

    def test_sweep_skip_prob_boundaries_accepted(self):
        assert make_tiny_spec(sweep_skip_prob=0.0).sweep_skip_prob == 0.0
        assert make_tiny_spec(sweep_skip_prob=0.999).sweep_skip_prob == 0.999

    def test_scaled_preserves_knobs(self):
        spec = make_tiny_spec(popularity_exponent=0.33, loop_fraction=0.07)
        scaled = spec.scaled(0.5)
        assert scaled.functions == 60
        assert scaled.popularity_exponent == 0.33
        assert scaled.loop_fraction == 0.07

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec().scaled(0)

    def test_estimated_static_branches(self):
        spec = make_tiny_spec()
        assert spec.estimated_static_branches() == 120 * 8


class TestWorkloadInput:
    def test_input0_is_unperturbed(self):
        inp = make_tiny_spec().make_input(0)
        assert inp.popularity_shift == 0.0
        assert inp.bias_shift == 0.0

    def test_later_inputs_shift_more(self):
        spec = make_tiny_spec()
        i1, i2 = spec.make_input(1), spec.make_input(2)
        assert 0 < i1.popularity_shift < i2.popularity_shift <= 1.0

    def test_inputs_have_distinct_seeds(self):
        spec = make_tiny_spec()
        seeds = {spec.make_input(i).walk_seed for i in range(4)}
        assert len(seeds) == 4

    def test_seed_stable_across_calls(self):
        spec = make_tiny_spec()
        assert spec.make_input(2).walk_seed == spec.make_input(2).walk_seed

    def test_negative_index_rejected(self):
        with pytest.raises(WorkloadError):
            make_tiny_spec().make_input(-1)

    def test_label(self):
        assert make_tiny_spec().make_input(3).label() == "tinyapp#3"


class TestPaperApps:
    def test_nine_apps(self):
        assert len(PAPER_APPS) == 9
        assert set(app_names()) == set(PAPER_APPS)

    def test_get_app_known(self):
        spec = get_app("cassandra")
        assert spec.name == "cassandra"

    def test_get_app_unknown(self):
        with pytest.raises(WorkloadError):
            get_app("nginx")

    def test_verilator_is_the_sweep_app(self):
        assert get_app("verilator").dispatch_pattern == "sweep"
        assert all(
            get_app(a).dispatch_pattern == "zipf"
            for a in app_names()
            if a != "verilator"
        )

    def test_verilator_has_largest_footprint_target(self):
        targets = {a: get_app(a).footprint_mb_target for a in app_names()}
        assert max(targets, key=targets.get) == "verilator"

    def test_mpki_targets_match_paper_band(self):
        targets = [get_app(a).btb_mpki_target for a in app_names()]
        assert min(targets) == 8.0
        assert max(targets) == 121.0

    def test_scale_parameter(self):
        full = get_app("kafka", scale=1.0)
        half = get_app("kafka", scale=0.5)
        assert half.functions == full.functions // 2


class TestValidateMix:
    def test_normalizes(self):
        mix = validate_mix({"a": 2.0, "b": 2.0})
        assert mix == {"a": 0.5, "b": 0.5}

    def test_rejects_zero_total(self):
        with pytest.raises(WorkloadError):
            validate_mix({"a": 0.0})
