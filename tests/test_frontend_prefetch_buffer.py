"""BTB prefetch buffer: readiness, LRU, promotion accounting."""

import pytest

from repro.frontend.prefetch_buffer import PrefetchBuffer
from repro.isa.branches import BranchKind

K = BranchKind.UNCOND_DIRECT


class TestPrefetchBuffer:
    def test_take_ready_entry(self):
        buf = PrefetchBuffer(4)
        buf.insert(0x100, 0x200, K, ready_cycle=10)
        assert buf.take(0x100, now=10) == (0x200, K)
        assert buf.promotions == 1

    def test_take_consumes(self):
        buf = PrefetchBuffer(4)
        buf.insert(0x100, 0x200, K, ready_cycle=0)
        buf.take(0x100, now=5)
        assert buf.take(0x100, now=5) is None

    def test_late_entry_not_taken(self):
        buf = PrefetchBuffer(4)
        buf.insert(0x100, 0x200, K, ready_cycle=50)
        assert buf.take(0x100, now=10) is None
        assert buf.late_hits == 1
        # Entry remains for a later, in-time take.
        assert buf.take(0x100, now=60) == (0x200, K)

    def test_absent_pc(self):
        buf = PrefetchBuffer(4)
        assert buf.take(0x42, now=100) is None
        assert buf.late_hits == 0

    def test_lru_eviction(self):
        buf = PrefetchBuffer(2)
        buf.insert(1, 10, K, 0)
        buf.insert(2, 20, K, 0)
        buf.insert(3, 30, K, 0)
        assert 1 not in buf
        assert 2 in buf and 3 in buf
        assert buf.evicted_unused == 1

    def test_reinsert_keeps_earliest_ready(self):
        buf = PrefetchBuffer(4)
        buf.insert(0x100, 0x200, K, ready_cycle=10)
        buf.insert(0x100, 0x200, K, ready_cycle=90)
        assert buf.take(0x100, now=15) == (0x200, K)

    def test_zero_capacity_is_noop(self):
        buf = PrefetchBuffer(0)
        buf.insert(0x100, 0x200, K, 0)
        assert len(buf) == 0
        assert buf.take(0x100, 100) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(-1)

    def test_len_and_contains(self):
        buf = PrefetchBuffer(8)
        buf.insert(1, 2, K, 0)
        assert len(buf) == 1
        assert 1 in buf
