"""Streaming ingest layer: sketch, reservoir, shard fold."""

import pytest

from repro.errors import ServiceError
from repro.profiling.profile import MissProfile, MissSample
from repro.service.ingest import IngestBuffer, SampleBatch, ShardState
from repro.service.reservoir import ReservoirSampler
from repro.service.sketch import CountMinSketch


def sample(pc: int, block: int = 1) -> MissSample:
    return MissSample(miss_pc=pc, miss_block=block, window=((block, 1.0),))


def batch(pcs, app="tinyapp", label="0", seq=0) -> SampleBatch:
    return SampleBatch(
        app_name=app,
        input_label=label,
        samples=tuple(sample(pc) for pc in pcs),
        seq=seq,
    )


class TestCountMinSketch:
    def test_one_sided_overestimate(self):
        sketch = CountMinSketch(64, 4, seed=3)
        truth = {}
        for i in range(500):
            pc = 0x1000 + (i * 7) % 40
            truth[pc] = truth.get(pc, 0) + 1
            sketch.update(pc)
        for pc, count in truth.items():
            assert sketch.estimate(pc) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(1024, 4, seed=0)
        for _ in range(5):
            sketch.update(0xBEEF)
        assert sketch.estimate(0xBEEF) == 5
        assert sketch.estimate(0xF00D) == 0

    def test_update_returns_running_estimate(self):
        sketch = CountMinSketch(1024, 4, seed=0)
        assert sketch.update(0xA) == 1
        assert sketch.update(0xA) == 2
        assert sketch.update(0xA, count=3) == 5

    def test_deterministic_across_instances(self):
        a = CountMinSketch(128, 4, seed=9)
        b = CountMinSketch(128, 4, seed=9)
        for i in range(300):
            a.update(i * 13)
            b.update(i * 13)
        for i in range(300):
            assert a.estimate(i * 13) == b.estimate(i * 13)

    def test_seed_changes_hashes(self):
        a = CountMinSketch(16, 2, seed=1)
        b = CountMinSketch(16, 2, seed=2)
        for i in range(200):
            a.update(i)
            b.update(i)
        diffs = sum(a.estimate(i) != b.estimate(i) for i in range(200))
        assert diffs > 0

    @pytest.mark.parametrize("width,depth", [(0, 4), (16, 0), (-1, 2)])
    def test_rejects_bad_geometry(self, width, depth):
        with pytest.raises(ServiceError):
            CountMinSketch(width, depth)


class TestReservoirSampler:
    def test_under_capacity_is_stream_prefix(self):
        res = ReservoirSampler(10, "shard", 0)
        for i in range(7):
            assert res.offer(i) is True
        assert res.items == list(range(7))
        assert res.seen == 7
        assert res.evicted == 0
        assert not res.overflowed

    def test_overflow_stays_bounded(self):
        res = ReservoirSampler(8, "shard", 0)
        for i in range(1000):
            res.offer(i)
        assert len(res) == 8
        assert res.seen == 1000
        assert res.overflowed
        assert set(res.items) <= set(range(1000))

    def test_deterministic_for_same_seed_parts(self):
        a = ReservoirSampler(8, ("app", "0"), 42)
        b = ReservoirSampler(8, ("app", "0"), 42)
        for i in range(500):
            a.offer(i)
            b.offer(i)
        assert a.items == b.items

    def test_seed_parts_change_the_sample(self):
        a = ReservoirSampler(8, ("app", "0"), 1)
        b = ReservoirSampler(8, ("app", "1"), 1)
        for i in range(500):
            a.offer(i)
            b.offer(i)
        assert a.items != b.items

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ServiceError):
            ReservoirSampler(0)


class TestSampleBatch:
    def test_rejects_empty_samples(self):
        with pytest.raises(ServiceError, match="no samples"):
            SampleBatch(app_name="a", input_label="0", samples=())

    def test_rejects_blank_identity(self):
        with pytest.raises(ServiceError, match="app_name"):
            SampleBatch(app_name="", input_label="0", samples=(sample(1),))
        with pytest.raises(ServiceError, match="input_label"):
            SampleBatch(app_name="a", input_label="", samples=(sample(1),))

    def test_key(self):
        assert batch([1]).key == ("tinyapp", "0")


class TestShardState:
    def test_absorb_counts_and_dirty_tracking(self):
        shard = ShardState(("tinyapp", "0"), reservoir_capacity=100)
        assert not shard.dirty
        shard.absorb(batch([1, 2, 3]))
        assert shard.dirty
        assert shard.generation == 1
        c = shard.counters
        assert (c.batches, c.received, c.admitted) == (1, 3, 3)
        assert (c.filtered, c.dropped) == (0, 0)
        shard.built_generation = shard.generation
        assert not shard.dirty

    def test_rejects_misrouted_batch(self):
        shard = ShardState(("tinyapp", "0"), reservoir_capacity=10)
        with pytest.raises(ServiceError, match="routed"):
            shard.absorb(batch([1], label="other"))

    def test_hot_threshold_filters_first_occurrences(self):
        shard = ShardState(("tinyapp", "0"), reservoir_capacity=100, hot_threshold=2)
        shard.absorb(batch([7, 7, 7, 9]))
        c = shard.counters
        # First sighting of each pc (7 and 9) falls below the
        # threshold; the repeats of 7 clear it.
        assert c.filtered == 2
        assert c.admitted == 2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ServiceError):
            ShardState(("a", "0"), reservoir_capacity=10, hot_threshold=0)

    def test_fold_matches_direct_profile(self):
        shard = ShardState(("tinyapp", "0"), reservoir_capacity=100)
        pcs = [5, 9, 5, 11, 9, 5]
        shard.absorb(batch(pcs[:3]))
        shard.absorb(batch(pcs[3:], seq=1))
        direct = MissProfile(app_name="tinyapp", input_label="0")
        for pc in pcs:
            s = sample(pc)
            direct.add_sample(s.miss_pc, s.miss_block, s.window)
        folded = shard.fold()
        assert folded.total_samples == direct.total_samples
        assert folded.miss_pcs() == direct.miss_pcs()
        for pc in set(pcs):
            assert folded.samples_for(pc) == direct.samples_for(pc)

    def test_fold_is_bounded_by_reservoir(self):
        shard = ShardState(("tinyapp", "0"), reservoir_capacity=4)
        shard.absorb(batch(list(range(50))))
        assert shard.counters.admitted + shard.counters.dropped == 50
        assert len(shard.fold()) == 4


class TestIngestBuffer:
    def test_acks_are_per_batch_deltas(self):
        buf = IngestBuffer(reservoir_capacity=100)
        first = buf.ingest(batch([1, 2]))
        second = buf.ingest(batch([3], seq=1))
        assert (first.received, first.admitted) == (2, 2)
        assert (second.received, second.admitted) == (1, 1)
        assert second.generation == 2

    def test_shards_created_on_demand_in_contact_order(self):
        buf = IngestBuffer(reservoir_capacity=10)
        buf.ingest(batch([1], app="b"))
        buf.ingest(batch([1], app="a"))
        buf.ingest(batch([2], app="b"))
        assert buf.keys() == [("b", "0"), ("a", "0")]
        assert buf.dirty_keys() == [("b", "0"), ("a", "0")]

    def test_get_unknown_returns_none(self):
        assert IngestBuffer(reservoir_capacity=10).get(("x", "0")) is None
