"""Deterministic RNG helpers."""

import pytest

from repro.workloads.rng import derive_seed, make_rng, zipf_weights


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {derive_seed("app", i) for i in range(100)}
        assert len(seeds) == 100

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_64_bit_range(self):
        s = derive_seed("x")
        assert 0 <= s < 1 << 64


class TestMakeRng:
    def test_same_parts_same_stream(self):
        a, b = make_rng("k", 2), make_rng("k", 2)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        a, b = make_rng("k", 2), make_rng("k", 3)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestZipfWeights:
    def test_monotone_decreasing(self):
        w = zipf_weights(10, 0.8)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_uniform_at_zero_exponent(self):
        w = zipf_weights(5, 0.0)
        assert all(x == w[0] for x in w)

    def test_first_weight_is_one(self):
        assert zipf_weights(3, 1.5)[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_higher_exponent_more_skew(self):
        flat = zipf_weights(10, 0.2)
        steep = zipf_weights(10, 2.0)
        assert steep[-1] / steep[0] < flat[-1] / flat[0]
