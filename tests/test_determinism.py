"""Bit-identical repeatability of the simulator.

The on-disk cache key assumes that (settings, app, system, config)
fully determine a simulation's output.  These tests pin that guarantee:
two independent runners — and serial vs. parallel execution — must
produce identical metrics, counter for counter.
"""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.profiling.serialize import result_to_dict

APPS = ("wordpress", "drupal", "mediawiki")
SYSTEMS = ("baseline", "twig")
SETTINGS = RunnerSettings(trace_instructions=30_000, apps=APPS, sample_rate=1)


def _all_results(runner):
    return {
        (app, system): result_to_dict(runner.run(app, system))
        for app in APPS
        for system in SYSTEMS
    }


class TestDeterminism:
    def test_independent_runners_identical(self):
        first = _all_results(ExperimentRunner(SETTINGS))
        second = _all_results(ExperimentRunner(SETTINGS))
        assert first == second

    def test_rerun_within_one_runner_identical(self):
        # One app suffices here: unlike the independent-runner test this
        # exercises re-simulation over the *same* workload/trace objects.
        settings = RunnerSettings(
            trace_instructions=30_000, apps=("wordpress",), sample_rate=1
        )
        runner = ExperimentRunner(settings)
        first = {s: result_to_dict(runner.run("wordpress", s)) for s in SYSTEMS}
        # Drop the memo so the second pass really re-simulates.
        runner._results.clear()
        runner._profiles.clear()
        runner._plans.clear()
        second = {s: result_to_dict(runner.run("wordpress", s)) for s in SYSTEMS}
        assert first == second

    def test_sanitized_runs_match_plain_goldens(self):
        # The sanitizers (repro.validate) only *observe*: a sanitize=True
        # run must reproduce the plain golden counter for counter, while
        # also passing every invariant check along the way.
        settings = RunnerSettings(
            trace_instructions=30_000, apps=("wordpress",), sample_rate=1
        )
        plain = ExperimentRunner(settings)
        sanitized = ExperimentRunner(settings)
        cfg = SimConfig(sanitize=True)
        for system in SYSTEMS:
            golden = result_to_dict(plain.run("wordpress", system))
            checked = result_to_dict(
                sanitized.run("wordpress", system, config=cfg)
            )
            assert checked == golden

    def test_telemetry_runs_match_plain_goldens(self, tmp_path):
        # Telemetry only *observes* (spans, counters, JSONL events): a
        # telemetry-on run must reproduce the plain golden counter for
        # counter — the zero-overhead contract of DESIGN.md §9.
        from repro.telemetry import TelemetrySink, read_events

        settings = RunnerSettings(
            trace_instructions=30_000, apps=("wordpress",), sample_rate=1
        )
        plain = ExperimentRunner(settings)
        sink = TelemetrySink(str(tmp_path / "tel.jsonl"))
        instrumented = ExperimentRunner(settings, telemetry=sink)
        for system in SYSTEMS:
            golden = result_to_dict(plain.run("wordpress", system))
            observed = result_to_dict(instrumented.run("wordpress", system))
            assert observed == golden
        sink.close()
        # The instrumented runner really was instrumented.
        assert any(e["event"] == "span" for e in read_events(sink.path))

    @pytest.mark.slow
    def test_serial_vs_parallel_identical(self):
        serial = ExperimentRunner(SETTINGS)
        expected = _all_results(serial)

        parallel = ExperimentRunner(SETTINGS, jobs=4)
        results = parallel.warm(
            [(app, system) for app in APPS for system in SYSTEMS], jobs=4
        )
        assert len(results) == len(expected)
        assert _all_results(parallel) == expected
        # The runs actually came from the pool (or its serial fallback
        # in restricted environments) — never silently skipped.
        assert parallel.stats.parallel_runs + parallel.stats.simulations == len(
            expected
        )
