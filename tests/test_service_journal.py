"""Tests for the fleet ingest journal (repro.service.journal)."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.profiling.profile import MissSample
from repro.service.ingest import SampleBatch
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    IngestJournal,
    read_journal,
)


def sample(i: int) -> MissSample:
    return MissSample(
        miss_pc=0x1000 + 4 * i,
        miss_block=0x2000 + 64 * i,
        window=((0x2000 + 64 * i, 10 + i), (0x2040 + 64 * i, 20 + i)),
    )


def batch(app: str, label: str, seq: int, n: int = 3) -> SampleBatch:
    return SampleBatch(
        app_name=app,
        input_label=label,
        samples=tuple(sample(seq * 10 + i) for i in range(n)),
        seq=seq,
    )


KEY_A = ("wordpress", "input0")
KEY_B = ("drupal", "input0")


class TestInMemoryJournal:
    def test_record_count_entries_in_order(self):
        journal = IngestJournal()
        b0 = batch(*KEY_A, seq=0)
        b1 = batch(*KEY_A, seq=1)
        other = batch(*KEY_B, seq=0)
        assert journal.record(b0) == 0
        assert journal.record(other) == 0  # indices are per shard
        assert journal.record(b1) == 1
        assert journal.count(KEY_A) == 2
        assert journal.count(KEY_B) == 1
        assert journal.count(("nope", "nope")) == 0
        assert journal.entries(KEY_A) == (b0, b1)
        assert journal.keys() == [KEY_A, KEY_B]

    def test_replay_from_offset(self):
        journal = IngestJournal()
        batches = [batch(*KEY_A, seq=i) for i in range(4)]
        for b in batches:
            journal.record(b)
        assert list(journal.replay(KEY_A)) == batches
        assert list(journal.replay(KEY_A, start=2)) == batches[2:]
        assert list(journal.replay(KEY_A, start=9)) == []
        assert list(journal.replay(KEY_B)) == []

    def test_replay_negative_start_rejected(self):
        journal = IngestJournal()
        with pytest.raises(JournalError, match="start"):
            list(journal.replay(KEY_A, start=-1))

    def test_stats(self):
        journal = IngestJournal()
        journal.record(batch(*KEY_A, seq=0, n=2))
        journal.record(batch(*KEY_B, seq=0, n=5))
        assert journal.stats() == {
            "keys": 2,
            "batches": 2,
            "samples": 7,
            "events": 0,
            "torn_records": 0,
        }


class TestMirror:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = IngestJournal(path)
        recorded = [
            batch(*KEY_A, seq=0),
            batch(*KEY_B, seq=0, n=2),
            batch(*KEY_A, seq=1, n=4),
        ]
        for b in recorded:
            journal.record(b)
        journal.close()

        loaded = read_journal(path)
        assert loaded.entries(KEY_A) == (recorded[0], recorded[2])
        assert loaded.entries(KEY_B) == (recorded[1],)
        assert loaded.stats() == journal.stats()

    def test_mirror_lines_are_self_describing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, encoding="utf-8") as fh:
            record = json.loads(fh.readline())
        assert record["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert record["event"] == "ingest"
        assert record["app"] == KEY_A[0]
        assert record["index"] == 0
        assert record["samples"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="no journal mirror"):
            read_journal(str(tmp_path / "absent.jsonl"))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(JournalError, match="invalid JSON"):
            read_journal(str(path))

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, encoding="utf-8") as fh:
            record = json.loads(fh.readline())
        record["schema_version"] = 999
        record["v"] = 999
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="unsupported journal schema"):
            read_journal(path)

    def test_missing_schema_version_rejected(self, tmp_path):
        path = tmp_path / "naked.jsonl"
        path.write_text(json.dumps({"event": "ingest", "app": "a"}) + "\n")
        with pytest.raises(JournalError, match="no schema_version"):
            read_journal(str(path))

    def test_index_gap_rejected(self, tmp_path):
        path = str(tmp_path / "gap.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.record(batch(*KEY_A, seq=1))
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(lines[1] + "\n")  # drop index 0 -> gap
        with pytest.raises(JournalError, match="out of order"):
            read_journal(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "mangled.jsonl"
        path.write_text(
            json.dumps({"schema_version": 1, "event": "ingest", "app": "a"})
            + "\n"
        )
        with pytest.raises(JournalError, match="malformed journal record"):
            read_journal(str(path))

    def test_unwritable_mirror_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(JournalError, match="cannot open journal mirror"):
            IngestJournal(str(target / "journal.jsonl"))


class TestTornTail:
    """A crash can only tear the FINAL record (each record is one
    ``write()`` of a full line); readers skip it and surface the count."""

    def write_with_torn_tail(self, tmp_path) -> str:
        path = str(tmp_path / "torn.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.record(batch(*KEY_A, seq=1))
        journal.close()
        with open(path, "r+", encoding="utf-8") as fh:
            whole = fh.read()
            fh.seek(0)
            fh.truncate()
            # Chop the final record mid-JSON, dropping its newline.
            fh.write(whole[: len(whole) - 30])
        return path

    def test_torn_final_record_skipped(self, tmp_path):
        path = self.write_with_torn_tail(tmp_path)
        loaded = read_journal(path)
        assert loaded.count(KEY_A) == 1
        assert loaded.stats()["torn_records"] == 1

    def test_torn_tail_without_newline_terminator(self, tmp_path):
        path = str(tmp_path / "torn2.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema_version": 1, "event": "in')  # no newline
        loaded = read_journal(path)
        assert loaded.count(KEY_A) == 1
        assert loaded.torn_records == 1

    def test_interior_corruption_still_rejected(self, tmp_path):
        # A bad line WITH a trailing newline is not a torn tail — a
        # single-write append can't produce it — so it must raise.
        path = str(tmp_path / "interior.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, "r+", encoding="utf-8") as fh:
            good = fh.read()
            fh.seek(0)
            fh.truncate()
            fh.write("{corrupt}\n" + good)
        with pytest.raises(JournalError, match="invalid JSON"):
            read_journal(path)

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = self.write_with_torn_tail(tmp_path)
        journal = IngestJournal(path, resume=True)
        assert journal.count(KEY_A) == 1
        assert journal.torn_records == 1
        # The torn bytes are gone from disk, and the next record lands
        # at the index the torn one failed to claim.
        assert journal.record(batch(*KEY_A, seq=1)) == 1
        journal.close()
        loaded = read_journal(path)
        assert loaded.count(KEY_A) == 2
        assert loaded.torn_records == 0


class TestResume:
    def test_resume_continues_indices(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = IngestJournal(path)
        first.record(batch(*KEY_A, seq=0))
        first.record(batch(*KEY_B, seq=0))
        first.close()

        second = IngestJournal(path, resume=True)
        assert second.count(KEY_A) == 1
        assert second.record(batch(*KEY_A, seq=1)) == 1
        second.close()

        loaded = read_journal(path)
        assert loaded.count(KEY_A) == 2
        assert loaded.count(KEY_B) == 1

    def test_resume_without_existing_file(self, tmp_path):
        path = str(tmp_path / "fresh.jsonl")
        journal = IngestJournal(path, resume=True)
        assert journal.record(batch(*KEY_A, seq=0)) == 0
        journal.close()
        assert read_journal(path).count(KEY_A) == 1


class TestDurableWrites:
    def test_fsync_knob_records_and_reads_back(self, tmp_path):
        path = str(tmp_path / "fsynced.jsonl")
        journal = IngestJournal(path, fsync=True)
        journal.record(batch(*KEY_A, seq=0))
        journal.record(batch(*KEY_A, seq=1))
        # Acked records are already on disk before close().
        assert read_journal(path).count(KEY_A) == 2
        journal.close()

    def test_killed_writer_loses_no_acked_batch(self, tmp_path):
        """Regression: every record() acked before a SIGKILL must be
        readable afterwards — flush-per-record is the WAL contract."""
        import os
        import signal
        import subprocess
        import sys

        path = str(tmp_path / "killed.jsonl")
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        script = """
import sys
from repro.profiling.profile import MissSample
from repro.service.ingest import SampleBatch
from repro.service.journal import IngestJournal

journal = IngestJournal(sys.argv[1])
seq = 0
while True:
    samples = tuple(
        MissSample(miss_pc=0x1000 + i, miss_block=0x2000 + i, window=())
        for i in range(3)
    )
    journal.record(
        SampleBatch(
            app_name="wordpress", input_label="input0",
            samples=samples, seq=seq,
        )
    )
    print(f"ACK {seq}", flush=True)
    seq += 1
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        proc = subprocess.Popen(
            [sys.executable, "-c", script, path],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            acked = -1
            for _ in range(5):  # wait for five acked batches
                line = proc.stdout.readline()
                assert line.startswith("ACK ")
                acked = int(line.split()[1])
        finally:
            proc.kill()
            proc.wait()
        assert acked >= 4
        loaded = IngestJournal(path, resume=True)
        # At most the in-flight (never-acked) record may be torn; every
        # acked batch must have survived the kill.
        assert loaded.count(("wordpress", "input0")) >= acked + 1
        for i, b in enumerate(loaded.replay(("wordpress", "input0"))):
            assert b.seq == i
        loaded.close()
