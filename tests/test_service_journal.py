"""Tests for the fleet ingest journal (repro.service.journal)."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.profiling.profile import MissSample
from repro.service.ingest import SampleBatch
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    IngestJournal,
    read_journal,
)


def sample(i: int) -> MissSample:
    return MissSample(
        miss_pc=0x1000 + 4 * i,
        miss_block=0x2000 + 64 * i,
        window=((0x2000 + 64 * i, 10 + i), (0x2040 + 64 * i, 20 + i)),
    )


def batch(app: str, label: str, seq: int, n: int = 3) -> SampleBatch:
    return SampleBatch(
        app_name=app,
        input_label=label,
        samples=tuple(sample(seq * 10 + i) for i in range(n)),
        seq=seq,
    )


KEY_A = ("wordpress", "input0")
KEY_B = ("drupal", "input0")


class TestInMemoryJournal:
    def test_record_count_entries_in_order(self):
        journal = IngestJournal()
        b0 = batch(*KEY_A, seq=0)
        b1 = batch(*KEY_A, seq=1)
        other = batch(*KEY_B, seq=0)
        assert journal.record(b0) == 0
        assert journal.record(other) == 0  # indices are per shard
        assert journal.record(b1) == 1
        assert journal.count(KEY_A) == 2
        assert journal.count(KEY_B) == 1
        assert journal.count(("nope", "nope")) == 0
        assert journal.entries(KEY_A) == (b0, b1)
        assert journal.keys() == [KEY_A, KEY_B]

    def test_replay_from_offset(self):
        journal = IngestJournal()
        batches = [batch(*KEY_A, seq=i) for i in range(4)]
        for b in batches:
            journal.record(b)
        assert list(journal.replay(KEY_A)) == batches
        assert list(journal.replay(KEY_A, start=2)) == batches[2:]
        assert list(journal.replay(KEY_A, start=9)) == []
        assert list(journal.replay(KEY_B)) == []

    def test_replay_negative_start_rejected(self):
        journal = IngestJournal()
        with pytest.raises(JournalError, match="start"):
            list(journal.replay(KEY_A, start=-1))

    def test_stats(self):
        journal = IngestJournal()
        journal.record(batch(*KEY_A, seq=0, n=2))
        journal.record(batch(*KEY_B, seq=0, n=5))
        assert journal.stats() == {"keys": 2, "batches": 2, "samples": 7}


class TestMirror:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = IngestJournal(path)
        recorded = [
            batch(*KEY_A, seq=0),
            batch(*KEY_B, seq=0, n=2),
            batch(*KEY_A, seq=1, n=4),
        ]
        for b in recorded:
            journal.record(b)
        journal.close()

        loaded = read_journal(path)
        assert loaded.entries(KEY_A) == (recorded[0], recorded[2])
        assert loaded.entries(KEY_B) == (recorded[1],)
        assert loaded.stats() == journal.stats()

    def test_mirror_lines_are_self_describing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, encoding="utf-8") as fh:
            record = json.loads(fh.readline())
        assert record["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert record["event"] == "ingest"
        assert record["app"] == KEY_A[0]
        assert record["index"] == 0
        assert record["samples"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="no journal mirror"):
            read_journal(str(tmp_path / "absent.jsonl"))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(JournalError, match="invalid JSON"):
            read_journal(str(path))

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.close()
        with open(path, encoding="utf-8") as fh:
            record = json.loads(fh.readline())
        record["schema_version"] = 999
        record["v"] = 999
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="unsupported journal schema"):
            read_journal(path)

    def test_missing_schema_version_rejected(self, tmp_path):
        path = tmp_path / "naked.jsonl"
        path.write_text(json.dumps({"event": "ingest", "app": "a"}) + "\n")
        with pytest.raises(JournalError, match="no schema_version"):
            read_journal(str(path))

    def test_index_gap_rejected(self, tmp_path):
        path = str(tmp_path / "gap.jsonl")
        journal = IngestJournal(path)
        journal.record(batch(*KEY_A, seq=0))
        journal.record(batch(*KEY_A, seq=1))
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(lines[1] + "\n")  # drop index 0 -> gap
        with pytest.raises(JournalError, match="out of order"):
            read_journal(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "mangled.jsonl"
        path.write_text(
            json.dumps({"schema_version": 1, "event": "ingest", "app": "a"})
            + "\n"
        )
        with pytest.raises(JournalError, match="malformed journal record"):
            read_journal(str(path))

    def test_unwritable_mirror_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(JournalError, match="cannot open journal mirror"):
            IngestJournal(str(target / "journal.jsonl"))
