"""CLI tests for ``python -m repro.staticcheck`` / tools wrapper."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.staticcheck.__main__ import _with_service_closure, main


class TestLintCli:
    def test_repo_lint_exits_clean(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_explicit_dirty_path_fails(self, tmp_path, capsys):
        bad = tmp_path / "dirty.py"
        bad.write_text("import random\n")
        assert main([str(bad)]) == 1
        assert "L101" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "dirty.py"
        bad.write_text("import os\nv = os.environ.get('X')\n")
        assert main(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["error"] == 1
        assert doc["findings"][0]["rule"] == "L104"

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        warn = tmp_path / "repro" / "frontend" / "newbuf.py"
        warn.parent.mkdir(parents=True)
        warn.write_text("class NewBuffer:\n    pass\n")
        assert main([str(warn)]) == 0
        assert main(["--strict", str(warn)]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("P101", "P108", "C101", "L101", "L107", "A101", "A106", "U101"):
            assert rule in out

    def test_json_format_carries_service_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "service" / "mini.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nasync def f():\n    time.sleep(1)\n")
        assert main(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "A101"
        assert doc["findings"][0]["severity"] == "error"

    def test_usage_errors(self, capsys):
        assert main(["--apps", "wordpress"]) == 2
        assert main(["--no-lint", "somefile.py"]) == 2
        assert main(["--changed", "somefile.py"]) == 2
        assert main(["--changed", "--no-lint"]) == 2

    def test_unknown_app_is_clean_error(self, capsys):
        assert main(["--check-plans", "--no-lint", "--apps", "nope"]) == 2
        assert "unknown app" in capsys.readouterr().err


class TestUnusedSuppressionsCli:
    def test_stale_site_warns_and_gates_under_strict(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # staticcheck: disable=L101\n")
        assert main([str(path)]) == 0  # off by default
        assert main(["--report-unused-suppressions", str(path)]) == 0
        assert (
            main(["--report-unused-suppressions", "--strict", "--verbose", str(path)])
            == 1
        )
        assert "U101" in capsys.readouterr().out

    def test_live_site_is_quiet(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("import random  # staticcheck: disable=L101\n")
        assert main(["--report-unused-suppressions", "--strict", str(path)]) == 0


class TestChangedMode:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "PATH": "/usr/bin:/bin",
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
            },
        )

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q", "-b", "main")
        src = tmp_path / "src" / "pkg"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        return src

    def test_changed_lints_only_the_diff(self, tmp_path, monkeypatch, capsys):
        src = self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["--changed"]) == 0
        assert "no changed source files" in capsys.readouterr().err

        (src / "clean.py").write_text("import random\nx = 1\n")
        (src / "untracked.py").write_text("def f(a=[]):\n    return a\n")
        (tmp_path / "outside.py").write_text("import random\n")  # not under src/
        assert main(["--changed"]) == 1
        out = capsys.readouterr().out
        assert "L101" in out and "L106" in out
        assert "outside.py" not in out

    def test_changed_base_without_merge_base_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["--changed", "--changed-base", "no-such-ref"]) == 2
        assert "no merge base" in capsys.readouterr().err

    def test_service_change_pulls_in_layer3_closure(self):
        files = [Path("src/repro/service/server.py")]
        closure = {p.name for p in _with_service_closure(list(files))}
        assert {"server.py", "service", "errors.py", "parallel.py"} <= closure
        # Non-service changes stay minimal: no closure expansion.
        alone = [Path("src/repro/config.py")]
        assert _with_service_closure(list(alone)) == alone


@pytest.mark.slow
class TestCheckPlansCli:
    def test_check_plans_wordpress(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "20000")
        assert main(["--check-plans", "--no-lint", "--apps", "wordpress"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
