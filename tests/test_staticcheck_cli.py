"""CLI tests for ``python -m repro.staticcheck`` / tools wrapper."""

from __future__ import annotations

import json

import pytest

from repro.staticcheck.__main__ import main


class TestLintCli:
    def test_repo_lint_exits_clean(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_explicit_dirty_path_fails(self, tmp_path, capsys):
        bad = tmp_path / "dirty.py"
        bad.write_text("import random\n")
        assert main([str(bad)]) == 1
        assert "L101" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "dirty.py"
        bad.write_text("import os\nv = os.environ.get('X')\n")
        assert main(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["error"] == 1
        assert doc["findings"][0]["rule"] == "L104"

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        warn = tmp_path / "repro" / "frontend" / "newbuf.py"
        warn.parent.mkdir(parents=True)
        warn.write_text("class NewBuffer:\n    pass\n")
        assert main([str(warn)]) == 0
        assert main(["--strict", str(warn)]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("P101", "P108", "C101", "L101", "L107"):
            assert rule in out

    def test_usage_errors(self, capsys):
        assert main(["--apps", "wordpress"]) == 2
        assert main(["--no-lint", "somefile.py"]) == 2

    def test_unknown_app_is_clean_error(self, capsys):
        assert main(["--check-plans", "--no-lint", "--apps", "nope"]) == 2
        assert "unknown app" in capsys.readouterr().err


@pytest.mark.slow
class TestCheckPlansCli:
    def test_check_plans_wordpress(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_INSTRUCTIONS", "20000")
        assert main(["--check-plans", "--no-lint", "--apps", "wordpress"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
