"""CFG builder: structure, determinism, layout, reachability."""

import pytest

from repro.isa.branches import BranchKind
from repro.workloads.cfg import (
    DIRECT_KIND_CODES,
    KIND_CALL,
    KIND_CODE,
    KIND_COND,
    KIND_FROM_CODE,
    KIND_NONE,
    Workload,
    build_workload,
    _dfs_layout_order,
)
from tests.conftest import make_tiny_spec


class TestKindCodes:
    def test_roundtrip(self):
        for kind, code in KIND_CODE.items():
            assert KIND_FROM_CODE[code] is kind

    def test_direct_codes(self):
        assert KIND_COND in DIRECT_KIND_CODES
        assert KIND_CALL in DIRECT_KIND_CODES
        assert KIND_NONE not in DIRECT_KIND_CODES


class TestBuildDeterminism:
    def test_same_seed_same_binary(self):
        spec = make_tiny_spec()
        a = build_workload(spec, seed=3)
        b = build_workload(spec, seed=3)
        assert a.block_start == b.block_start
        assert a.branch_pc == b.branch_pc
        assert a.branch_target == b.branch_target

    def test_different_seed_different_binary(self):
        spec = make_tiny_spec()
        a = build_workload(spec, seed=1)
        b = build_workload(spec, seed=2)
        assert a.branch_target != b.branch_target


class TestStructure:
    def test_function_count(self, tiny_workload):
        assert len(tiny_workload.functions) == 120

    def test_root_is_dispatch_loop(self, tiny_workload):
        root = tiny_workload.functions[tiny_workload.root_function]
        assert root.level == 0
        assert root.n_blocks == 2
        first = tiny_workload.branch_kind[root.first_block]
        assert first is BranchKind.CALL_INDIRECT
        loop = tiny_workload.branch_kind[root.first_block + 1]
        assert loop is BranchKind.UNCOND_DIRECT

    def test_handlers_are_level_one(self, tiny_workload):
        for h in tiny_workload.handler_indices:
            assert tiny_workload.functions[h].level == 1

    def test_handler_weights_positive(self, tiny_workload):
        assert len(tiny_workload.handler_weights) == len(tiny_workload.handler_indices)
        assert all(w > 0 for w in tiny_workload.handler_weights)

    def test_every_function_ends_in_return(self, tiny_workload):
        for f in tiny_workload.functions:
            if f.index == tiny_workload.root_function:
                continue
            last = f.first_block + f.n_blocks - 1
            assert tiny_workload.branch_kind[last] is BranchKind.RETURN

    def test_blocks_sorted_and_non_overlapping(self, tiny_workload):
        starts = tiny_workload.block_start
        sizes = tiny_workload.block_size
        for i in range(len(starts) - 1):
            assert starts[i] + sizes[i] <= starts[i + 1]

    def test_direct_targets_are_block_starts(self, tiny_workload):
        for bi in range(tiny_workload.n_blocks):
            kind = tiny_workload.branch_kind[bi]
            if kind is not None and kind.is_direct:
                assert tiny_workload.target_block[bi] >= 0

    def test_calls_target_function_entries(self, tiny_workload):
        entries = {f.entry_addr for f in tiny_workload.functions}
        for bi in range(tiny_workload.n_blocks):
            if tiny_workload.branch_kind[bi] is BranchKind.CALL_DIRECT:
                assert tiny_workload.branch_target[bi] in entries

    def test_cond_targets_within_function(self, tiny_workload):
        # Conditional targets stay inside the same function.
        for f in tiny_workload.functions:
            for bi in f.block_range:
                if tiny_workload.branch_kind[bi] is BranchKind.COND_DIRECT:
                    assert tiny_workload.target_block[bi] in f.block_range

    def test_calls_go_downward_in_level(self, tiny_workload):
        # DAG property: callee level strictly greater than caller level.
        func_of_block = {}
        for f in tiny_workload.functions:
            for bi in f.block_range:
                func_of_block[bi] = f
        entry_to_func = {f.entry_addr: f for f in tiny_workload.functions}
        for bi in range(tiny_workload.n_blocks):
            kind = tiny_workload.branch_kind[bi]
            if kind is BranchKind.CALL_DIRECT:
                caller = func_of_block[bi]
                callee = entry_to_func[tiny_workload.branch_target[bi]]
                if caller.level > 0:
                    assert callee.level > caller.level

    def test_kind_code_array_consistent(self, tiny_workload):
        for bi in range(tiny_workload.n_blocks):
            kind = tiny_workload.branch_kind[bi]
            code = tiny_workload.kind_code[bi]
            if kind is None:
                assert code == KIND_NONE
            else:
                assert KIND_FROM_CODE[code] is kind

    def test_block_index_at(self, tiny_workload):
        for bi in (0, 5, tiny_workload.n_blocks - 1):
            assert tiny_workload.block_index_at(tiny_workload.block_start[bi]) == bi

    def test_describe_mentions_name(self, tiny_workload):
        assert "tinyapp" in tiny_workload.describe()


class TestLayout:
    def test_far_region_exists(self):
        spec = make_tiny_spec(far_region_fraction=0.5)
        wl = build_workload(spec, seed=0)
        base = 0x400000
        far = base + spec.far_region_offset
        near_funcs = [f for f in wl.functions if f.entry_addr < far]
        far_funcs = [f for f in wl.functions if f.entry_addr >= far]
        assert near_funcs and far_funcs

    def test_no_far_region_when_fraction_zero(self):
        spec = make_tiny_spec(far_region_fraction=0.0)
        wl = build_workload(spec, seed=0)
        far = 0x400000 + spec.far_region_offset
        assert all(f.entry_addr < far for f in wl.functions)

    def test_dfs_order_root_first(self):
        plans = [
            [("call", 1)],       # 0 calls 1
            [("call", 2)],       # 1 calls 2
            [("ret",)],          # 2
            [("ret",)],          # 3 unreachable
        ]
        order = _dfs_layout_order(plans)
        assert order[0] == 0
        assert order.index(1) < order.index(2) or True  # callee follows caller
        assert order[:3] == [0, 1, 2]
        assert order[3] == 3

    def test_dfs_order_covers_all(self, tiny_workload):
        # implied: every function got an address and a Function record.
        assert all(f is not None for f in tiny_workload.functions)
        assert len({f.entry_addr for f in tiny_workload.functions}) == 120
