"""Shotgun model: partitioning, spatial window, predecode timing."""

import pytest

from repro.config import SimConfig
from repro.prefetchers.base import LOOKUP_COVERED, LOOKUP_HIT, LOOKUP_MISS
from repro.prefetchers.shotgun import (
    PREDECODE_LATENCY_MISS,
    ShotgunBTBSystem,
    _geometry,
)
from repro.isa.branches import BranchKind
from repro.workloads.cfg import KIND_COND, KIND_UNCOND


@pytest.fixture()
def shotgun(tiny_workload):
    return ShotgunBTBSystem(tiny_workload, SimConfig())


def _first_branch_of(workload, kind):
    for b in workload.binary.branches():
        if b.kind is kind:
            return b
    raise AssertionError(f"no {kind} in workload")


class TestGeometry:
    def test_paper_sizes(self, shotgun):
        u, c = shotgun.storage_entries()
        assert u == 5120
        assert c == 1536

    def test_geometry_power_of_two_sets(self):
        for entries in (5120, 1536, 4096, 256):
            cfg = _geometry(entries)
            assert cfg.entries == entries
            sets = cfg.entries // cfg.ways
            assert sets & (sets - 1) == 0

    def test_geometry_rejects_impossible(self):
        with pytest.raises(ValueError):
            _geometry(7919)  # prime


class TestPartitioning:
    def test_cond_miss_goes_to_cbtb(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.COND_DIRECT)
        assert shotgun.lookup(br.pc, KIND_COND, 0) == LOOKUP_MISS
        shotgun.fill(br.pc, br.target, KIND_COND, 0)
        assert shotgun.cbtb.peek(br.pc) is not None
        assert shotgun.ubtb.peek(br.pc) is None

    def test_uncond_goes_to_ubtb(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.UNCOND_DIRECT)
        shotgun.fill(br.pc, br.target, KIND_UNCOND, 0)
        assert shotgun.ubtb.peek(br.pc) is not None
        assert shotgun.lookup(br.pc, KIND_UNCOND, 1) == LOOKUP_HIT


class TestPredecode:
    def test_ubtb_hit_predecodes_window(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.UNCOND_DIRECT)
        shotgun.fill(br.pc, br.target, KIND_UNCOND, 0)
        shotgun.lookup(br.pc, KIND_UNCOND, 10)
        # Conditionals within 8 lines of the target are now staged.
        line = br.target // 64
        window_conds = [
            b
            for ln in range(line, line + 8)
            for b in tiny_workload.binary.branches_in_line(ln)
            if b.kind is BranchKind.COND_DIRECT
        ]
        staged = [b for b in window_conds if shotgun.cbtb.peek(b.pc) is not None]
        assert staged, "predecode should stage in-window conditionals"

    def test_predecoded_entry_late_before_latency(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.UNCOND_DIRECT)
        shotgun.fill(br.pc, br.target, KIND_UNCOND, 0)
        shotgun.lookup(br.pc, KIND_UNCOND, 10)
        line = br.target // 64
        cond = next(
            (
                b
                for ln in range(line, line + 8)
                for b in tiny_workload.binary.branches_in_line(ln)
                if b.kind is BranchKind.COND_DIRECT
            ),
            None,
        )
        if cond is None:
            pytest.skip("window holds no conditional")
        # Immediately after the trigger, the predecode has not finished.
        assert shotgun.lookup(cond.pc, KIND_COND, 11) == LOOKUP_MISS
        # After the miss-path latency it is usable and counts as covered.
        later = 10 + PREDECODE_LATENCY_MISS + 1
        assert shotgun.lookup(cond.pc, KIND_COND, later) == LOOKUP_COVERED

    def test_out_of_window_cond_never_prefetched(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.UNCOND_DIRECT)
        shotgun.fill(br.pc, br.target, KIND_UNCOND, 0)
        shotgun.lookup(br.pc, KIND_UNCOND, 10)
        far_conds = [
            b
            for b in tiny_workload.binary.branches()
            if b.kind is BranchKind.COND_DIRECT
            and abs(b.pc // 64 - br.target // 64) > 16
        ]
        assert far_conds
        staged = [b for b in far_conds if shotgun.cbtb.peek(b.pc) is not None]
        assert not staged

    def test_accuracy_counters(self, shotgun, tiny_workload):
        br = _first_branch_of(tiny_workload, BranchKind.UNCOND_DIRECT)
        shotgun.fill(br.pc, br.target, KIND_UNCOND, 0)
        shotgun.lookup(br.pc, KIND_UNCOND, 10)
        assert shotgun.prefetches_issued() == shotgun.cbtb.prefetch_fills
        assert shotgun.prefetches_used() <= shotgun.prefetches_issued()


class TestFootprintRecording:
    def test_recording_rotates_on_uncond(self, shotgun):
        shotgun.on_taken_branch(0x100, 0x4000, KIND_UNCOND, 0)
        shotgun.on_line_fetched(0x4000 // 64, 1)
        shotgun.on_line_fetched(0x4000 // 64 + 2, 2)
        shotgun.on_taken_branch(0x200, 0x8000, KIND_UNCOND, 3)
        assert shotgun._footprints[0x100] == (0x4000 // 64, 0x4000 // 64 + 2)

    def test_out_of_window_lines_not_recorded(self, shotgun):
        shotgun.on_taken_branch(0x100, 0x4000, KIND_UNCOND, 0)
        shotgun.on_line_fetched(0x4000 // 64 + 100, 1)
        shotgun.on_taken_branch(0x200, 0x8000, KIND_UNCOND, 2)
        assert shotgun._footprints[0x100] == ()

    def test_cond_branches_do_not_rotate_recording(self, shotgun):
        shotgun.on_taken_branch(0x100, 0x4000, KIND_UNCOND, 0)
        shotgun.on_taken_branch(0x300, 0x5000, KIND_COND, 1)
        assert shotgun._recording_pc == 0x100
