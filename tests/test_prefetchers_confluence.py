"""Confluence model: AirBTB line sync, SHIFT replay, timing."""

import pytest

from repro.config import SimConfig
from repro.prefetchers.base import LOOKUP_COVERED, LOOKUP_HIT, LOOKUP_MISS
from repro.prefetchers.confluence import (
    ConfluenceBTBSystem,
    REPLAY_METADATA_LATENCY,
)
from repro.isa.branches import BranchKind
from repro.workloads.cfg import KIND_COND, KIND_UNCOND


@pytest.fixture()
def confluence(tiny_workload):
    return ConfluenceBTBSystem(tiny_workload, SimConfig(), line_capacity=64)


def _branch_with_line(workload):
    """Any branch plus its cache line."""
    br = next(iter(workload.binary.branches()))
    return br, br.pc // 64


class TestAirBTB:
    def test_cold_miss(self, confluence, tiny_workload):
        br, _ = _branch_with_line(tiny_workload)
        assert confluence.lookup(br.pc, KIND_UNCOND, 0) == LOOKUP_MISS

    def test_line_install_makes_entries_visible_at_arrival(
        self, confluence, tiny_workload
    ):
        br, line = _branch_with_line(tiny_workload)
        confluence.on_line_fetched(line, now=100)  # arrives at 100
        assert confluence.lookup(br.pc, KIND_UNCOND, 50) == LOOKUP_MISS  # early
        assert confluence.lookup(br.pc, KIND_UNCOND, 100) == LOOKUP_COVERED

    def test_covered_only_counted_once(self, confluence, tiny_workload):
        br, line = _branch_with_line(tiny_workload)
        confluence.on_line_fetched(line, now=0)
        assert confluence.lookup(br.pc, KIND_UNCOND, 10) == LOOKUP_COVERED
        assert confluence.lookup(br.pc, KIND_UNCOND, 11) == LOOKUP_HIT

    def test_demand_fill_immediately_visible(self, confluence, tiny_workload):
        br, _ = _branch_with_line(tiny_workload)
        confluence.fill(br.pc, br.target, KIND_UNCOND, now=5)
        assert confluence.lookup(br.pc, KIND_UNCOND, 5) == LOOKUP_HIT

    def test_line_eviction_drops_entries(self, tiny_workload):
        # Capacity 2 lines: installing a third evicts the first.
        conf = ConfluenceBTBSystem(tiny_workload, SimConfig(), line_capacity=2)
        branches = list(tiny_workload.binary.branches())
        lines = []
        for br in branches:
            ln = br.pc // 64
            if ln not in lines:
                lines.append(ln)
            if len(lines) == 3:
                break
        first_branch = next(b for b in branches if b.pc // 64 == lines[0])
        for ln in lines:
            conf.on_line_fetched(ln, now=0)
        assert conf.lookup(first_branch.pc, KIND_UNCOND, 10) == LOOKUP_MISS

    def test_whole_line_predecoded(self, confluence, tiny_workload):
        # Every branch in an installed line is present.
        by_line = {}
        for br in tiny_workload.binary.branches():
            by_line.setdefault(br.pc // 64, []).append(br)
        line, brs = max(by_line.items(), key=lambda kv: len(kv[1]))
        confluence.on_line_fetched(line, now=0)
        for br in brs:
            assert confluence.lookup(br.pc, KIND_COND, 10) in (
                LOOKUP_COVERED,
                LOOKUP_HIT,
            )


class TestSHIFT:
    def test_replay_installs_successors_with_metadata_latency(
        self, confluence, tiny_workload
    ):
        by_line = sorted({br.pc // 64 for br in tiny_workload.binary.branches()})
        a, b, c = by_line[0], by_line[1], by_line[2]
        # Record stream a -> b -> c.
        confluence.on_line_fetched(a, now=0)
        confluence.on_line_fetched(b, now=1)
        confluence.on_line_fetched(c, now=2)
        # Force eviction of b's entries so the replay matters.
        conf2 = confluence
        conf2._lines.pop(b)
        conf2._lines.pop(c)
        # Re-miss on a: SHIFT replays b, c with the LLC metadata latency.
        conf2.on_line_fetched(a, now=100)
        assert b in conf2._lines
        br_b = tiny_workload.binary.branches_in_line(b)[0]
        assert conf2.lookup(br_b.pc, KIND_COND, 100) == LOOKUP_MISS  # still in flight
        assert conf2.lookup(
            br_b.pc, KIND_COND, 100 + REPLAY_METADATA_LATENCY
        ) in (LOOKUP_COVERED, LOOKUP_HIT)

    def test_history_wrap_bounds_memory(self, tiny_workload):
        conf = ConfluenceBTBSystem(
            tiny_workload, SimConfig(), line_capacity=8, history_len=16
        )
        for i in range(100):
            conf.on_line_fetched(1000 + i, now=i)
        assert len(conf._history) <= 16

    def test_prefetch_accounting(self, confluence, tiny_workload):
        br, line = _branch_with_line(tiny_workload)
        confluence.on_line_fetched(line, now=0)
        issued = confluence.prefetches_issued()
        assert issued >= 1
        confluence.lookup(br.pc, KIND_UNCOND, 10)
        assert confluence.prefetches_used() == 1
