"""Characterization analyses: 3C, temporal streams, working sets, CDFs."""

import pytest

from repro.analysis.cdf import cdf_at, injection_offsets, offset_cdf
from repro.analysis.temporal import StreamBreakdown, classify_streams, miss_positions
from repro.analysis.threec import ThreeCResult, classify_3c, taken_direct_stream
from repro.analysis.topdown import topdown
from repro.analysis.working_set import (
    conditional_working_set,
    spatial_range_fraction,
    unconditional_working_set,
    working_set_curve,
)
from repro.config import BTBConfig, SimConfig
from repro.uarch.results import SimResult


class TestThreeC:
    def test_classes_partition_misses(self, tiny_workload, tiny_trace):
        res = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4))
        assert res.misses == res.compulsory + res.capacity + res.conflict
        assert res.accesses >= res.misses > 0

    def test_fractions_sum_to_one(self, tiny_workload, tiny_trace):
        res = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4))
        assert sum(res.fractions()) == pytest.approx(1.0)

    def test_bigger_btb_fewer_capacity_misses(self, tiny_workload, tiny_trace):
        small = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4))
        big = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=4096, ways=4))
        assert big.capacity < small.capacity

    def test_higher_assoc_fewer_conflicts(self, tiny_workload, tiny_trace):
        low = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=2))
        high = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=256))
        assert high.conflict <= low.conflict

    def test_fully_assoc_has_no_conflicts(self, tiny_workload, tiny_trace):
        res = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=256))
        assert res.conflict == 0

    def test_skip_reduces_compulsory(self, tiny_workload, tiny_trace):
        cold = classify_3c(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4))
        warm = classify_3c(
            tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4), skip=5000
        )
        assert warm.compulsory < cold.compulsory

    def test_stream_only_taken_directs(self, tiny_workload, tiny_trace):
        pcs = set(taken_direct_stream(tiny_workload, tiny_trace))
        kinds = {
            tiny_workload.branch_kind[b]
            for b in set(tiny_trace.blocks)
            if tiny_workload.branch_pc[b] in pcs
        }
        assert all(k.is_direct for k in kinds if k is not None)

    def test_empty_result(self):
        r = ThreeCResult()
        assert r.fractions() == (0.0, 0.0, 0.0)
        assert r.miss_rate() == 0.0


class TestTemporalStreams:
    def test_fractions_sum(self, tiny_workload, tiny_trace):
        b = classify_streams(
            tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4)
        )
        assert b.total > 0
        assert sum(b.fractions()) == pytest.approx(1.0)

    def test_miss_positions_monotone(self, tiny_workload, tiny_trace):
        misses = miss_positions(tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4))
        positions = [p for p, _ in misses]
        assert positions == sorted(positions)

    def test_recurring_requires_repetition(self, tiny_workload, tiny_trace):
        b = classify_streams(
            tiny_workload, tiny_trace, BTBConfig(entries=256, ways=4),
            skip_fraction=0.5,
        )
        # With the structured walker, a meaningful share of misses
        # recurs in the same order.
        assert b.recurring > 0

    def test_empty_breakdown(self):
        b = StreamBreakdown()
        assert b.fractions() == (0.0, 0.0, 0.0)


class TestWorkingSets:
    def test_curve_monotone(self, tiny_workload, tiny_trace):
        points = [1000, 5000, 10000, len(tiny_trace)]
        curve = working_set_curve(tiny_workload, tiny_trace, points)
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert len(curve) == len(points)

    def test_uncond_subset_of_all(self, tiny_workload, tiny_trace):
        uncond = unconditional_working_set(tiny_workload, tiny_trace)
        cond = conditional_working_set(tiny_workload, tiny_trace)
        total = tiny_trace.stats.unique_branches
        assert 0 < uncond < total
        assert 0 < cond < total

    def test_spatial_fraction_in_unit_interval(self, tiny_workload, tiny_trace):
        frac = spatial_range_fraction(tiny_workload, tiny_trace, range_lines=8)
        assert 0.0 < frac < 1.0

    def test_wider_range_covers_more(self, tiny_workload, tiny_trace):
        narrow = spatial_range_fraction(tiny_workload, tiny_trace, range_lines=2)
        wide = spatial_range_fraction(tiny_workload, tiny_trace, range_lines=64)
        assert wide <= narrow


class TestCDF:
    def test_cdf_monotone_and_bounded(self):
        cdf = offset_cdf([1, -5, 100, 3000, -70000])
        fracs = [f for _, f in cdf]
        assert all(a <= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] == pytest.approx(1.0)

    def test_cdf_at(self):
        cdf = offset_cdf([1, 1, 2000, 1 << 20])
        assert cdf_at(cdf, 2) == pytest.approx(0.5)
        assert cdf_at(cdf, 12) == pytest.approx(0.75)
        assert cdf_at(cdf, 48) == pytest.approx(1.0)

    def test_cdf_empty(self):
        cdf = offset_cdf([])
        assert cdf_at(cdf, 48) == 0.0

    def test_injection_offsets_weighted(self, tiny_workload):
        from repro.core.candidates import CandidateSelection

        sel = CandidateSelection(
            miss_pc=tiny_workload.branch_pc[10],
            miss_block=10,
            sites=((2, 0.9, 3),),
            total_samples=3,
        )
        tb, tt = injection_offsets(tiny_workload, [sel])
        assert len(tb) == 3 and len(tt) == 3
        assert tb[0] == sel.miss_pc - tiny_workload.block_start[2]


class TestTopdown:
    def test_buckets_sum_to_one(self):
        res = SimResult(instructions=600, cycles=1000, cond_mispredicts=5)
        res.mispredict_cycles = 80
        td = topdown(res, width=6)
        assert td.check()
        assert 0 <= td.retiring <= 1

    def test_perfect_machine_all_retiring(self):
        res = SimResult(instructions=6000, cycles=1000)
        td = topdown(res, width=6)
        assert td.retiring == pytest.approx(1.0)
        assert td.frontend_bound == pytest.approx(0.0)

    def test_empty(self):
        td = topdown(SimResult(), width=6)
        assert td.retiring == 0.0
