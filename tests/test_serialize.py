"""Profile/plan JSON serialization round-trips."""

import io
import json

import pytest

from repro.config import SimConfig
from repro.core.twig import build_plan, run_with_plan
from repro.errors import PlanError, ProfileError
from repro.profiling.collector import collect_profile
from repro.profiling.profile import MissProfile
from repro.profiling.serialize import (
    SCHEMA_VERSION,
    load_plan,
    load_profile,
    plan_from_dict,
    plan_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_plan,
    save_profile,
)


@pytest.fixture(scope="module")
def artifacts(request):
    from repro.trace.walker import generate_trace
    from repro.workloads.cfg import build_workload
    from tests.conftest import make_tiny_spec

    spec = make_tiny_spec(name="serial", functions=150)
    wl = build_workload(spec, seed=5)
    tr = generate_trace(wl, spec.make_input(0), max_instructions=80_000)
    cfg = SimConfig().with_btb(entries=512)
    profile = collect_profile(wl, tr, cfg)
    plan = build_plan(wl, profile, cfg)
    return wl, tr, cfg, profile, plan


class TestProfileRoundTrip:
    def test_dict_roundtrip_preserves_samples(self, artifacts):
        _, _, _, profile, _ = artifacts
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.total_samples == profile.total_samples
        assert clone.miss_pcs() == profile.miss_pcs()
        assert clone.block_occurrences == profile.block_occurrences

    def test_file_roundtrip(self, artifacts, tmp_path):
        _, _, _, profile, _ = artifacts
        path = str(tmp_path / "profile.json")
        save_profile(profile, path)
        clone = load_profile(path)
        assert clone.app_name == profile.app_name
        assert len(clone) == len(profile)

    def test_stream_roundtrip(self):
        prof = MissProfile("x", "0")
        prof.add_sample(0xA, 1, ((2, 30.0), (3, 25.0)))
        buf = io.StringIO()
        save_profile(prof, buf)
        buf.seek(0)
        clone = load_profile(buf)
        assert clone.samples_for(0xA)[0].window == ((2, 30.0), (3, 25.0))

    def test_rejects_wrong_kind(self):
        with pytest.raises(ProfileError):
            profile_from_dict({"kind": "prefetch_plan", "format": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(ProfileError):
            profile_from_dict({"kind": "miss_profile", "format": 99})

    def test_output_is_plain_json(self, artifacts):
        _, _, _, profile, _ = artifacts
        text = json.dumps(profile_to_dict(profile))
        assert json.loads(text)["kind"] == "miss_profile"


class TestSchemaVersion:
    """The ``schema_version`` field and its failure modes."""

    def test_writers_stamp_schema_version(self, artifacts):
        _, _, _, profile, plan = artifacts
        assert profile_to_dict(profile)["schema_version"] == SCHEMA_VERSION
        assert plan_to_dict(plan)["schema_version"] == SCHEMA_VERSION

    def test_legacy_format_only_files_still_load(self, artifacts):
        _, _, _, profile, plan = artifacts
        legacy = profile_to_dict(profile)
        del legacy["schema_version"]
        clone = profile_from_dict(legacy)
        assert clone.total_samples == profile.total_samples
        legacy_plan = plan_to_dict(plan)
        del legacy_plan["schema_version"]
        assert plan_from_dict(legacy_plan).total_ops() == plan.total_ops()

    def test_missing_version_is_a_clear_error(self, artifacts):
        _, _, _, profile, plan = artifacts
        data = profile_to_dict(profile)
        del data["schema_version"]
        del data["format"]
        with pytest.raises(ProfileError, match="schema_version"):
            profile_from_dict(data)
        plan_data = plan_to_dict(plan)
        del plan_data["schema_version"]
        del plan_data["format"]
        with pytest.raises(PlanError, match="schema_version"):
            plan_from_dict(plan_data)

    def test_unknown_version_is_a_clear_error(self, artifacts):
        _, _, _, profile, _ = artifacts
        data = profile_to_dict(profile)
        data["schema_version"] = 99
        with pytest.raises(ProfileError, match="version 99"):
            profile_from_dict(data)

    def test_missing_payload_is_typed_not_keyerror(self):
        with pytest.raises(ProfileError, match="samples"):
            profile_from_dict(
                {"kind": "miss_profile", "format": 1, "app": "x", "input": "0"}
            )
        with pytest.raises(PlanError, match="ops"):
            plan_from_dict({"kind": "prefetch_plan", "format": 1, "app": "x"})


class TestPlanRoundTrip:
    def test_dict_roundtrip_equivalent_plan(self, artifacts):
        _, _, _, _, plan = artifacts
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.total_ops() == plan.total_ops()
        assert clone.total_prefetch_entries() == plan.total_prefetch_entries()
        assert clone.static_bytes() == plan.static_bytes()
        assert clone.table == plan.table
        assert clone.sim_ops().keys() == plan.sim_ops().keys()

    def test_file_roundtrip_simulates_identically(self, artifacts, tmp_path):
        wl, tr, cfg, _, plan = artifacts
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        clone = load_plan(path)
        a = run_with_plan(wl, tr, plan, cfg)
        b = run_with_plan(wl, tr, clone, cfg)
        assert a.cycles == b.cycles
        assert a.btb_covered_misses == b.btb_covered_misses

    def test_rejects_wrong_kind(self):
        with pytest.raises(PlanError):
            plan_from_dict({"kind": "miss_profile", "format": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(PlanError):
            plan_from_dict({"kind": "prefetch_plan", "format": 0})


class TestAtomicSaves:
    """Torn-write regression: an interrupted save must never clobber
    the artifact already on disk, and must clean up its tmp file."""

    class Boom(BaseException):
        """Out-of-band interrupt, like SIGKILL landing mid-dump."""

    def crashing_dump(self, monkeypatch, after_chars: int):
        """Make json.dump die after emitting *after_chars* characters."""
        import repro.profiling.serialize as serialize

        real_dumps = json.dumps

        def dump(data, fh, **kwargs):
            text = real_dumps(data, **kwargs)
            fh.write(text[:after_chars])
            raise self.Boom()

        monkeypatch.setattr(serialize.json, "dump", dump)

    def test_interrupted_save_profile_keeps_old_file(
        self, artifacts, tmp_path, monkeypatch
    ):
        _, _, _, profile, _ = artifacts
        path = str(tmp_path / "profile.json")
        save_profile(profile, path)
        before = open(path, encoding="utf-8").read()

        replacement = MissProfile("other", "1")
        replacement.add_sample(0xA, 1, ((2, 30.0), (3, 25.0)))
        self.crashing_dump(monkeypatch, after_chars=40)
        with pytest.raises(self.Boom):
            save_profile(replacement, path)
        monkeypatch.undo()

        assert open(path, encoding="utf-8").read() == before
        clone = load_profile(path)  # still loads, not torn
        assert clone.total_samples == profile.total_samples
        assert not list(tmp_path.glob("*.tmp")), "tmp file left behind"

    def test_interrupted_save_plan_keeps_old_file(
        self, artifacts, tmp_path, monkeypatch
    ):
        _, _, _, _, plan = artifacts
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        before = open(path, encoding="utf-8").read()

        self.crashing_dump(monkeypatch, after_chars=25)
        with pytest.raises(self.Boom):
            save_plan(plan, path)
        monkeypatch.undo()

        assert open(path, encoding="utf-8").read() == before
        assert load_plan(path).table == plan.table
        assert not list(tmp_path.glob("*.tmp")), "tmp file left behind"

    def test_stream_saves_still_write_through(self, artifacts):
        """File-object saves are the caller's transaction, not ours."""
        _, _, _, profile, _ = artifacts
        buf = io.StringIO()
        save_profile(profile, buf)
        assert json.loads(buf.getvalue())["kind"] == "miss_profile"
