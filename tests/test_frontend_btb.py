"""BTB structures: set-associative LRU, fully-associative, ideal."""

import pytest

from repro.config import BTBConfig
from repro.frontend.btb import BTB, FullyAssociativeBTB, IdealBTB
from repro.isa.branches import BranchKind

K = BranchKind.UNCOND_DIRECT


@pytest.fixture()
def small_btb():
    # 8 entries, 2 ways -> 4 sets.
    return BTB(BTBConfig(entries=8, ways=2, entry_bytes=8))


class TestBTBBasics:
    def test_miss_then_hit(self, small_btb):
        assert small_btb.lookup(0x100) is None
        small_btb.insert(0x100, 0x200, K)
        entry = small_btb.lookup(0x100)
        assert entry is not None and entry.target == 0x200

    def test_counters(self, small_btb):
        small_btb.lookup(0x100)
        small_btb.insert(0x100, 0x200, K)
        small_btb.lookup(0x100)
        assert small_btb.lookups == 2
        assert small_btb.hits == 1
        assert small_btb.misses == 1
        assert small_btb.hit_rate() == 0.5

    def test_insert_updates_existing_target(self, small_btb):
        small_btb.insert(0x100, 0x200, K)
        small_btb.insert(0x100, 0x300, K)
        assert small_btb.peek(0x100).target == 0x300
        assert len(small_btb) == 1

    def test_peek_no_side_effects(self, small_btb):
        small_btb.insert(0x100, 0x200, K)
        small_btb.peek(0x100)
        assert small_btb.lookups == 0

    def test_invalidate(self, small_btb):
        small_btb.insert(0x100, 0x200, K)
        assert small_btb.invalidate(0x100)
        assert not small_btb.invalidate(0x100)
        assert 0x100 not in small_btb

    def test_contains(self, small_btb):
        small_btb.insert(0x104, 0, K)
        assert 0x104 in small_btb
        assert 0x108 not in small_btb


class TestLRUReplacement:
    def test_eviction_within_set(self, small_btb):
        # Same set: pcs congruent mod 4 (4 sets), 2 ways.
        pcs = [0x10, 0x14, 0x18]  # 0x10 % 4 == 0, 0x14 % 4 == 0, 0x18 % 4 == 0
        for pc in pcs:
            small_btb.insert(pc, 0, K)
        assert 0x10 not in small_btb  # LRU victim
        assert 0x14 in small_btb and 0x18 in small_btb
        assert small_btb.evictions == 1

    def test_lookup_refreshes_lru(self, small_btb):
        small_btb.insert(0x10, 0, K)
        small_btb.insert(0x14, 0, K)
        small_btb.lookup(0x10)          # refresh 0x10
        small_btb.insert(0x18, 0, K)    # evicts 0x14 now
        assert 0x10 in small_btb
        assert 0x14 not in small_btb

    def test_different_sets_do_not_interfere(self, small_btb):
        for i in range(8):
            small_btb.insert(i, 0, K)   # pcs 0..7 spread over 4 sets
        assert len(small_btb) == 8
        assert small_btb.evictions == 0


class TestPrefetchAccounting:
    def test_prefetch_fill_counted(self, small_btb):
        small_btb.insert(0x10, 0, K, from_prefetch=True)
        assert small_btb.prefetch_fills == 1
        assert small_btb.demand_fills == 0

    def test_prefetch_hit_counted_once(self, small_btb):
        small_btb.insert(0x10, 0, K, from_prefetch=True)
        small_btb.lookup(0x10)
        small_btb.lookup(0x10)
        assert small_btb.prefetch_hits == 1

    def test_demand_fill_clears_visibility(self, small_btb):
        small_btb.insert(0x10, 0, K, from_prefetch=True, visible_cycle=100.0)
        small_btb.insert(0x10, 0x44, K)  # demand refresh
        assert small_btb.peek(0x10).visible_cycle == 0.0

    def test_reset_counters(self, small_btb):
        small_btb.lookup(0x10)
        small_btb.reset_counters()
        assert small_btb.lookups == 0 and small_btb.misses == 0


class TestFullyAssociative:
    def test_hit_after_access(self):
        fa = FullyAssociativeBTB(4)
        assert not fa.access(1)
        assert fa.access(1)

    def test_lru_eviction_order(self):
        fa = FullyAssociativeBTB(2)
        fa.access(1)
        fa.access(2)
        fa.access(1)      # refresh 1
        fa.access(3)      # evicts 2
        assert fa.access(1)
        assert not fa.access(2)

    def test_seen_before_tracks_forever(self):
        fa = FullyAssociativeBTB(1)
        fa.access(1)
        fa.access(2)  # evicts 1
        assert fa.seen_before(1)
        assert not fa.seen_before(99)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeBTB(0)


class TestIdealBTB:
    def test_never_misses(self):
        ideal = IdealBTB()
        for pc in range(100):
            assert ideal.lookup(pc)
        assert ideal.misses == 0
        assert ideal.hits == 100
