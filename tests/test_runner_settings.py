"""Validation of the runner's environment knobs.

Each knob is read through :meth:`RunnerSettings.from_env`; bad values
must fail loudly with a :class:`ReproError` instead of being silently
accepted (or crashing deep inside the pipeline later).
"""

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import RunnerSettings
from repro.workloads.apps import app_names


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for name in (
        "REPRO_TRACE_INSTRUCTIONS",
        "REPRO_APPS",
        "REPRO_SAMPLE_RATE",
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestTraceInstructionsKnob:
    def test_default(self):
        assert RunnerSettings.from_env().trace_instructions == 1_000_000

    def test_valid(self, clean_env):
        clean_env.setenv("REPRO_TRACE_INSTRUCTIONS", "250000")
        assert RunnerSettings.from_env().trace_instructions == 250_000

    @pytest.mark.parametrize("bad", ["0", "-100", "abc", "1e6", "1.5"])
    def test_invalid_rejected(self, clean_env, bad):
        clean_env.setenv("REPRO_TRACE_INSTRUCTIONS", bad)
        with pytest.raises(ReproError, match="REPRO_TRACE_INSTRUCTIONS"):
            RunnerSettings.from_env()


class TestSampleRateKnob:
    def test_default(self):
        assert RunnerSettings.from_env().sample_rate == 1

    def test_valid(self, clean_env):
        clean_env.setenv("REPRO_SAMPLE_RATE", "4")
        assert RunnerSettings.from_env().sample_rate == 4

    @pytest.mark.parametrize("bad", ["0", "-2", "fast"])
    def test_invalid_rejected(self, clean_env, bad):
        clean_env.setenv("REPRO_SAMPLE_RATE", bad)
        with pytest.raises(ReproError, match="REPRO_SAMPLE_RATE"):
            RunnerSettings.from_env()


class TestAppsKnob:
    def test_default_is_all_apps(self):
        assert RunnerSettings.from_env().apps == app_names()

    def test_valid_subset(self, clean_env):
        clean_env.setenv("REPRO_APPS", "wordpress, cassandra")
        assert RunnerSettings.from_env().apps == ("wordpress", "cassandra")

    def test_unknown_app_rejected_with_choices(self, clean_env):
        clean_env.setenv("REPRO_APPS", "wordpress,nginx")
        with pytest.raises(ReproError, match="nginx") as excinfo:
            RunnerSettings.from_env()
        assert "wordpress" in str(excinfo.value)  # lists the known apps

    def test_only_separators_rejected(self, clean_env):
        clean_env.setenv("REPRO_APPS", " , ,")
        with pytest.raises(ReproError, match="REPRO_APPS"):
            RunnerSettings.from_env()


class TestDirectConstruction:
    def test_nonpositive_trace_rejected(self):
        with pytest.raises(ReproError):
            RunnerSettings(trace_instructions=0, apps=("wordpress",), sample_rate=1)

    def test_nonpositive_sample_rate_rejected(self):
        with pytest.raises(ReproError):
            RunnerSettings(trace_instructions=1000, apps=("wordpress",), sample_rate=0)

    def test_empty_apps_rejected(self):
        with pytest.raises(ReproError):
            RunnerSettings(trace_instructions=1000, apps=(), sample_rate=1)


class TestJobsKnob:
    def test_default(self):
        assert resolve_jobs() == 1

    def test_env(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "6")
        assert resolve_jobs() == 6

    def test_explicit_overrides_env(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "6")
        assert resolve_jobs(2) == 2

    @pytest.mark.parametrize("bad", ["0", "-1", "many"])
    def test_invalid_env_rejected(self, clean_env, bad):
        clean_env.setenv("REPRO_JOBS", bad)
        with pytest.raises(ReproError):
            resolve_jobs()

    def test_invalid_explicit_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(0)


class TestConfigAccessors:
    """Satellite 1 (PR 4): every env read goes through repro.config."""

    def test_results_dir(self, clean_env):
        from repro.config import results_dir_from_env

        assert results_dir_from_env() == "benchmarks/results"
        clean_env.setenv("REPRO_RESULTS_DIR", "/tmp/out")
        assert results_dir_from_env() == "/tmp/out"

    def test_cache_dir_and_kill_switch(self, clean_env):
        from repro.config import cache_dir_from_env, no_cache_from_env

        assert cache_dir_from_env() is None
        clean_env.setenv("REPRO_CACHE_DIR", "/tmp/cache")
        assert cache_dir_from_env() == "/tmp/cache"
        assert no_cache_from_env() is False
        clean_env.setenv("REPRO_NO_CACHE", "0")
        assert no_cache_from_env() is False
        clean_env.setenv("REPRO_NO_CACHE", "1")
        assert no_cache_from_env() is True

    def test_apps_accessor_raw(self, clean_env):
        from repro.config import apps_from_env

        assert apps_from_env() is None
        clean_env.setenv("REPRO_APPS", "wordpress, drupal")
        assert apps_from_env() == ("wordpress", "drupal")
        clean_env.setenv("REPRO_APPS", ", ,")
        with pytest.raises(ReproError, match="REPRO_APPS"):
            apps_from_env()

    def test_int_accessor_messages_name_the_knob(self, clean_env):
        from repro.config import int_from_env

        clean_env.setenv("REPRO_TRACE_INSTRUCTIONS", "zero")
        with pytest.raises(ReproError, match="REPRO_TRACE_INSTRUCTIONS"):
            int_from_env("REPRO_TRACE_INSTRUCTIONS", 5)

    def test_bool_accessor(self, clean_env):
        from repro.config import bool_from_env

        clean_env.setenv("REPRO_CHECK_PLANS", "yes")
        assert bool_from_env("REPRO_CHECK_PLANS") is True
        clean_env.setenv("REPRO_CHECK_PLANS", "off")
        assert bool_from_env("REPRO_CHECK_PLANS") is False
        clean_env.setenv("REPRO_CHECK_PLANS", "maybe")
        with pytest.raises(ReproError, match="REPRO_CHECK_PLANS"):
            bool_from_env("REPRO_CHECK_PLANS")
