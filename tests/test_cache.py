"""On-disk result cache: hits, integrity validation, quarantine.

Covers the three contract points of the cache subsystem:

* a warm cache eliminates *all* re-simulation (the fig-regeneration
  fast path);
* corrupted entries — truncation, bit-flips, checksum mismatches —
  are quarantined and transparently recomputed, never served;
* cached results are bit-identical to freshly simulated ones.
"""

import json
import os

import pytest

from repro.errors import CacheError
from repro.experiments.cache import (
    QUARANTINE_SUBDIR,
    ResultCache,
    cache_from_env,
    cache_key,
    payload_checksum,
)
from repro.experiments.figures import fig03_btb_mpki
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.profiling.serialize import result_to_dict

SETTINGS = RunnerSettings(trace_instructions=40_000, apps=("wordpress",), sample_rate=1)


def make_runner(tmp_path, **kwargs):
    return ExperimentRunner(SETTINGS, cache=ResultCache(str(tmp_path / "cache")), **kwargs)


def entry_files(tmp_path):
    d = tmp_path / "cache"
    return sorted(p for p in d.glob("*.json"))


class TestCachePrimitives:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fields = {"kind": "unit", "x": 1}
        payload = {"answer": 42, "nested": {"a": [1, 2]}}
        cache.store(fields, payload)
        assert cache.load(fields) == payload
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load({"kind": "unit"}) is None
        assert cache.stats.misses == 1

    def test_distinct_fields_distinct_keys(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})
        # Key ordering must not matter (canonical JSON).
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store({"k": 1}, {"v": 1})
        leftovers = [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]
        assert leftovers == []

    def test_empty_directory_rejected(self):
        with pytest.raises(CacheError):
            ResultCache("")

    def test_cache_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = cache_from_env()
        assert cache is not None and cache.directory == str(tmp_path)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_from_env() is None


class TestCorruptionHandling:
    def _populate(self, tmp_path):
        runner = make_runner(tmp_path)
        result = runner.run("wordpress", "baseline")
        files = entry_files(tmp_path)
        assert files, "expected at least one cache entry"
        return result, files

    def _assert_recovers(self, tmp_path, expected):
        """A fresh runner must quarantine the bad entry and recompute."""
        runner = make_runner(tmp_path)
        recomputed = runner.run("wordpress", "baseline")
        assert result_to_dict(recomputed) == result_to_dict(expected)
        assert runner.stats.simulations == 1
        assert runner.cache.stats.quarantined >= 1
        qdir = tmp_path / "cache" / QUARANTINE_SUBDIR
        assert qdir.is_dir() and any(qdir.iterdir())

    def test_truncated_entry_recovers(self, tmp_path):
        expected, files = self._populate(tmp_path)
        for path in files:
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        self._assert_recovers(tmp_path, expected)

    def test_bitflipped_payload_recovers(self, tmp_path):
        expected, files = self._populate(tmp_path)
        # Perturb a payload value without touching the stored checksum:
        # still valid JSON, but the integrity check must reject it.
        for path in files:
            entry = json.loads(path.read_text())
            for field in ("cycles", "samples"):
                if field in entry["payload"]:
                    value = entry["payload"][field]
                    entry["payload"][field] = (
                        value + 1 if isinstance(value, int) else value
                    )
            path.write_text(json.dumps(entry))
        self._assert_recovers(tmp_path, expected)

    def test_garbage_bytes_recover(self, tmp_path):
        expected, files = self._populate(tmp_path)
        for path in files:
            path.write_bytes(b"\x00\xff garbage \x80")
        self._assert_recovers(tmp_path, expected)

    def test_wrong_kind_payload_quarantined(self, tmp_path):
        """Checksum-valid but semantically wrong payloads are rejected too."""
        expected, files = self._populate(tmp_path)
        for path in files:
            entry = json.loads(path.read_text())
            entry["payload"] = {"kind": "prefetch_plan", "format": 1}
            entry["checksum"] = payload_checksum(entry["payload"])
            path.write_text(json.dumps(entry))
        self._assert_recovers(tmp_path, expected)

    def test_verify_reports_corruption(self, tmp_path):
        _, files = self._populate(tmp_path)
        files[0].write_bytes(b"not json")
        cache = ResultCache(str(tmp_path / "cache"))
        ok, corrupt = cache.verify()
        assert corrupt == (str(files[0]),)
        assert ok == len(files) - 1
        # verify(quarantine=True) moves it aside.
        ok2, corrupt2 = cache.verify(quarantine=True)
        assert len(corrupt2) == 1
        assert not files[0].exists()


class TestWarmCache:
    def test_second_runner_performs_zero_simulations(self, tmp_path):
        cold = make_runner(tmp_path)
        first = fig03_btb_mpki(cold)
        assert cold.stats.simulations > 0

        warm = make_runner(tmp_path)
        second = fig03_btb_mpki(warm)
        assert second == first
        assert warm.stats.simulations == 0, "warm cache must not re-simulate"
        assert warm.stats.profiles_collected == 0
        assert warm.cache.stats.hits > 0
        assert warm.stats.disk_hits == warm.cache.stats.hits

    def test_cached_results_equal_uncached(self, tmp_path):
        cached = make_runner(tmp_path)
        cached.run("wordpress", "twig")  # populates disk (profile + results)
        reread = make_runner(tmp_path)
        fresh = ExperimentRunner(SETTINGS)  # no disk cache at all
        assert result_to_dict(reread.run("wordpress", "twig")) == result_to_dict(
            fresh.run("wordpress", "twig")
        )
        assert reread.stats.simulations == 0

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner(SETTINGS)
        runner.run("wordpress", "baseline")
        assert list(tmp_path.iterdir()) == []

    def test_stale_version_entries_ignored_and_purgeable(self, tmp_path):
        cold = make_runner(tmp_path)
        cold.run("wordpress", "baseline")
        n_entries = len(entry_files(tmp_path))
        # Rewrite every entry as if an older repro version produced it.
        cache = ResultCache(str(tmp_path / "cache"))
        for path, entry in cache.entries():
            entry["fields"]["repro_version"] = "0.0.1"
            new_key = cache_key(entry["fields"])
            entry["key"] = new_key
            os.unlink(path)
            (tmp_path / "cache" / f"{new_key}.json").write_text(json.dumps(entry))
        warm = make_runner(tmp_path)
        warm.run("wordpress", "baseline")
        assert warm.stats.simulations == 1  # old-version entries never hit
        assert cache.purge(keep_version=None) >= n_entries


class TestQuarantineNaming:
    FIELDS = {"kind": "unit", "x": 1}

    def _corrupt(self, cache):
        cache.store(self.FIELDS, {"answer": 42})
        path = cache._path(cache_key(self.FIELDS))
        with open(path, "wb") as fh:
            fh.write(b"\x00 corrupt \xff")
        return path

    def test_repeat_corruption_keeps_every_generation(self, tmp_path):
        """A second corruption of the same key must not overwrite the
        first key's quarantined evidence."""
        cache = ResultCache(str(tmp_path))
        for _ in range(3):
            self._corrupt(cache)
            assert cache.load(self.FIELDS) is None
        qdir = tmp_path / QUARANTINE_SUBDIR
        base = cache_key(self.FIELDS) + ".json"
        names = sorted(p.name for p in qdir.iterdir())
        assert names == [base, f"{base}.1", f"{base}.2"]
        assert cache.stats.quarantined == 3
        assert cache.stats.quarantine_deleted == 0

    def test_failed_move_deletes_and_counts_separately(self, tmp_path, monkeypatch):
        """When quarantine can't move the file it must delete it (never
        serve corruption twice) and count that as a *deletion*, not as
        quarantined evidence."""
        cache = ResultCache(str(tmp_path))
        path = self._corrupt(cache)
        qdir = str(tmp_path / QUARANTINE_SUBDIR)
        real_replace = os.replace

        def broken_replace(src, dst):
            if dst.startswith(qdir):
                raise OSError("simulated cross-device failure")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", broken_replace)
        assert cache.load(self.FIELDS) is None
        assert not os.path.exists(path), "corrupt entry must not survive"
        assert cache.stats.quarantine_deleted == 1
        assert cache.stats.quarantined == 0
        # And it really is gone: the next load is a plain miss.
        assert cache.load(self.FIELDS) is None
        assert cache.stats.misses == 2
