"""Cache and memory-hierarchy behaviour."""

import pytest

from repro.config import CacheConfig, MemoryConfig
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture()
def tiny_cache():
    # 4 lines total: 2 sets x 2 ways, 64B lines.
    return Cache(CacheConfig(size_bytes=256, ways=2), name="t")


class TestCache:
    def test_miss_does_not_fill(self, tiny_cache):
        assert not tiny_cache.access(5)
        assert not tiny_cache.access(5)

    def test_fill_then_hit(self, tiny_cache):
        tiny_cache.fill(5)
        assert tiny_cache.access(5)

    def test_eviction_returns_victim(self, tiny_cache):
        tiny_cache.fill(0)  # set 0
        tiny_cache.fill(2)  # set 0
        victim = tiny_cache.fill(4)  # set 0, evicts LRU 0
        assert victim == 0
        assert not tiny_cache.contains(0)

    def test_access_refreshes_lru(self, tiny_cache):
        tiny_cache.fill(0)
        tiny_cache.fill(2)
        tiny_cache.access(0)
        tiny_cache.fill(4)
        assert tiny_cache.contains(0)
        assert not tiny_cache.contains(2)

    def test_fill_existing_is_refresh(self, tiny_cache):
        tiny_cache.fill(0)
        assert tiny_cache.fill(0) is None
        assert len(tiny_cache) == 1

    def test_invalidate(self, tiny_cache):
        tiny_cache.fill(7)
        assert tiny_cache.invalidate(7)
        assert not tiny_cache.invalidate(7)

    def test_hit_rate(self, tiny_cache):
        tiny_cache.fill(1)
        tiny_cache.access(1)
        tiny_cache.access(3)
        assert tiny_cache.hit_rate() == 0.5


class TestHierarchy:
    def test_latencies_increase_down_the_chain(self):
        h = MemoryHierarchy()
        cold = h.access_line(100)          # all the way to memory
        l1_hit = h.access_line(100)        # now L1-resident
        assert cold > l1_hit
        assert l1_hit == h.config.l1i.hit_latency

    def test_l2_hit_latency_band(self):
        h = MemoryHierarchy()
        h.access_line(100)
        # Evict from tiny... L1 is large; emulate by invalidating.
        h.l1i.invalidate(100)
        lat = h.access_line(100)
        assert lat == h.config.l1i.hit_latency + h.config.l2.hit_latency

    def test_prewarm_avoids_memory_latency(self):
        h = MemoryHierarchy()
        h.prewarm([100])
        lat = h.access_line(100)
        assert lat <= h.config.l1i.hit_latency + h.config.l2.hit_latency

    def test_prefetch_counter(self):
        h = MemoryHierarchy()
        h.access_line(1, is_prefetch=True)
        h.access_line(2, is_prefetch=False)
        assert h.prefetch_issues == 1
        assert h.demand_accesses == 1

    def test_line_of(self):
        h = MemoryHierarchy()
        assert h.line_of(0) == 0
        assert h.line_of(64) == 1

    def test_line_resident_l1(self):
        h = MemoryHierarchy()
        assert not h.line_resident_l1(9)
        h.access_line(9)
        assert h.line_resident_l1(9)

    def test_fills_propagate_to_all_levels(self):
        h = MemoryHierarchy()
        h.access_line(55)
        assert h.l1i.contains(55)
        assert h.l2.contains(55)
        assert h.l3.contains(55)
