"""Property tests for the consistent-hash ring (repro.service.ring).

Everything is driven by a seeded key corpus — no ambient RNG — so a
failure reproduces bit-for-bit.  The three pinned properties are the
ones the fleet router leans on: balance within a constant factor of
the mean, minimal key movement under membership/weight changes, and
replica placement that never co-locates.
"""

from __future__ import annotations

import pytest

from repro.errors import FleetError
from repro.service.ring import DEFAULT_VNODES, HashRing, movement


def corpus(n: int, tag: str = "app") -> list:
    """A deterministic (app, input) key corpus."""
    return [(f"{tag}{i % 97}", f"input{i}") for i in range(n)]


def build_ring(workers: int, seed: int = 0) -> HashRing:
    ring = HashRing(seed=seed)
    for i in range(workers):
        ring.add(f"w{i}")
    return ring


# ----------------------------------------------------------------------
class TestBalance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
    def test_share_within_bounds_of_mean(self, seed):
        ring = build_ring(5, seed=seed)
        keys = corpus(1000)
        shares = ring.shares(keys)
        mean = len(keys) / len(shares)
        assert sum(shares.values()) == len(keys)
        assert max(shares.values()) <= 2.0 * mean, shares
        assert min(shares.values()) >= 0.35 * mean, shares

    def test_weight_skews_share(self):
        ring = build_ring(4, seed=3)
        keys = corpus(2000)
        even = ring.shares(keys)
        ring.set_weight("w0", 3.0)
        skewed = ring.shares(keys)
        # Tripling w0's weight must grow its share substantially.
        assert skewed["w0"] > 1.8 * even["w0"]

    def test_determinism_same_seed_same_placement(self):
        a = build_ring(4, seed=9)
        b = build_ring(4, seed=9)
        keys = corpus(300)
        assert a.assignment(keys, replicas=2) == b.assignment(keys, replicas=2)

    def test_seed_changes_placement(self):
        a = build_ring(4, seed=0)
        b = build_ring(4, seed=1)
        keys = corpus(300)
        assert a.assignment(keys) != b.assignment(keys)


# ----------------------------------------------------------------------
class TestMinimalMovement:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_add_moves_only_to_new_worker(self, seed):
        ring = build_ring(4, seed=seed)
        keys = corpus(800)
        before = {k: ring.primary(k) for k in keys}
        ring.add("w4")
        after = {k: ring.primary(k) for k in keys}
        # movement() raises FleetError if any move doesn't involve w4.
        moved = movement(before, after, involved="w4")
        assert moved, "adding a worker must claim some keys"
        assert all(after[k] == "w4" for k in moved)
        # Roughly 1/5 of the space; generous bound to stay seed-stable.
        assert len(moved) <= 0.45 * len(keys)

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_remove_moves_only_from_removed_worker(self, seed):
        ring = build_ring(5, seed=seed)
        keys = corpus(800)
        before = {k: ring.primary(k) for k in keys}
        ring.remove("w2")
        after = {k: ring.primary(k) for k in keys}
        moved = movement(before, after, involved="w2")
        assert all(before[k] == "w2" for k in moved)
        # Everything w2 owned moved; nothing else did.
        assert len(moved) == sum(1 for k in keys if before[k] == "w2")

    def test_reweight_moves_only_involving_reweighted_worker(self):
        ring = build_ring(5, seed=4)
        keys = corpus(800)
        before = {k: ring.primary(k) for k in keys}
        ring.set_weight("w1", 2.5)
        after = {k: ring.primary(k) for k in keys}
        moved = movement(before, after, involved="w1")
        # A weight increase only pulls keys toward w1.
        assert all(after[k] == "w1" for k in moved)

    def test_movement_contract_rejects_gratuitous_moves(self):
        before = {("a", "1"): "w0", ("b", "2"): "w1"}
        after = {("a", "1"): "w2", ("b", "2"): "w1"}
        with pytest.raises(FleetError, match="without involving"):
            movement(before, after, involved="w1")
        assert movement(before, after) == [("a", "1")]


# ----------------------------------------------------------------------
class TestReplicaPlacement:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_replicas_never_co_locate(self, seed):
        ring = build_ring(5, seed=seed)
        for key in corpus(500):
            owners = ring.owners(key, replicas=3)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replicas_clamp_to_membership(self):
        ring = build_ring(2, seed=0)
        owners = ring.owners(("app", "input"), replicas=5)
        assert sorted(owners) == ["w0", "w1"]

    def test_primary_is_first_owner(self):
        ring = build_ring(4, seed=2)
        for key in corpus(100):
            assert ring.primary(key) == ring.owners(key, replicas=3)[0]

    def test_replica_set_stable_under_unrelated_add(self):
        ring = build_ring(4, seed=6)
        keys = corpus(400)
        before = ring.assignment(keys, replicas=2)
        ring.add("w4")
        after = ring.assignment(keys, replicas=2)
        for key in keys:
            # The new membership can only introduce w4 (possibly
            # displacing one old owner); it must never shuffle a key
            # onto an unrelated old worker.
            assert set(after[key]) <= set(before[key]) | {"w4"}
            assert len(set(before[key]) - set(after[key])) <= 1


# ----------------------------------------------------------------------
class TestRingApi:
    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        with pytest.raises(FleetError, match="no workers"):
            ring.owners(("a", "b"))

    def test_re_add_rejected(self):
        ring = build_ring(1)
        with pytest.raises(FleetError, match="already on the ring"):
            ring.add("w0")

    def test_remove_unknown_rejected(self):
        ring = build_ring(1)
        with pytest.raises(FleetError, match="not on the ring"):
            ring.remove("w9")
        with pytest.raises(FleetError, match="not on the ring"):
            ring.set_weight("w9", 2.0)
        with pytest.raises(FleetError, match="not on the ring"):
            ring.weight("w9")

    def test_nonpositive_weight_rejected(self):
        ring = build_ring(2)
        with pytest.raises(FleetError, match="must be positive"):
            ring.set_weight("w0", 0.0)
        with pytest.raises(FleetError, match="must be positive"):
            ring.add("w9", weight=-1.0)

    def test_bad_replica_count_rejected(self):
        ring = build_ring(2)
        with pytest.raises(FleetError, match="replicas must be >= 1"):
            ring.owners(("a", "b"), replicas=0)

    def test_bad_vnode_count_rejected(self):
        with pytest.raises(FleetError, match="vnodes_per_weight"):
            HashRing(vnodes_per_weight=0)

    def test_membership_and_describe(self):
        ring = build_ring(3, seed=1)
        ring.set_weight("w1", 2.0)
        assert len(ring) == 3
        assert "w1" in ring and "w9" not in ring
        assert ring.workers() == ["w0", "w1", "w2"]
        assert ring.describe() == {"w0": 1.0, "w1": 2.0, "w2": 1.0}
        assert ring.weight("w1") == 2.0
        assert ring.vnodes_per_weight == DEFAULT_VNODES
