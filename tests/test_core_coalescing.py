"""Coalesce table construction and bitmask-window packing."""

import pytest

from repro.core.coalescing import (
    CoalesceTable,
    build_table,
    coalescing_efficiency,
    plan_coalescing,
)
from repro.core.plan import InjectionOp, OP_COALESCE
from repro.errors import PlanError
from repro.workloads.cfg import KIND_UNCOND

E = lambda pc: (pc, pc + 0x100, KIND_UNCOND)  # noqa: E731


class TestCoalesceTable:
    def test_must_be_sorted(self):
        with pytest.raises(PlanError):
            CoalesceTable(entries=(E(0x200), E(0x100)))

    def test_must_be_unique(self):
        with pytest.raises(PlanError):
            CoalesceTable(entries=(E(0x100), E(0x100)))

    def test_index_of(self):
        t = build_table([E(0x300), E(0x100), E(0x200)])
        assert t.index_of(0x100) == 0
        assert t.index_of(0x200) == 1
        assert t.index_of(0x300) == 2

    def test_index_of_absent(self):
        t = build_table([E(0x100)])
        with pytest.raises(PlanError):
            t.index_of(0x999)

    def test_build_dedupes(self):
        t = build_table([E(0x100), E(0x100), E(0x200)])
        assert len(t) == 2


class TestPlanCoalescing:
    def test_adjacent_entries_share_one_op(self):
        per_block = {7: [E(0x100), E(0x108), E(0x110)]}
        table, ops = plan_coalescing(per_block, coalesce_bits=8)
        assert len(ops) == 1
        assert ops[0].kind == OP_COALESCE
        assert len(ops[0].entries) == 3

    def test_window_limit_splits_ops(self):
        # Nine entries spread over nine consecutive slots; 8-bit mask
        # covers at most 8 slots per op.
        per_block = {7: [E(0x100 + 8 * i) for i in range(9)]}
        table, ops = plan_coalescing(per_block, coalesce_bits=8)
        assert len(ops) == 2
        assert sum(len(op.entries) for op in ops) == 9

    def test_distant_entries_get_separate_ops(self):
        per_block = {7: [E(0x100), E(0x100000)]}
        # Another block's entries sit between them in the sorted table.
        per_block[9] = [E(0x200 + 8 * i) for i in range(20)]
        table, ops = plan_coalescing(per_block, coalesce_bits=8)
        block7_ops = [op for op in ops if op.block == 7]
        assert len(block7_ops) == 2

    def test_one_bit_mask_is_one_entry_per_op(self):
        per_block = {7: [E(0x100 + 8 * i) for i in range(4)]}
        _, ops = plan_coalescing(per_block, coalesce_bits=1)
        assert len(ops) == 4
        assert all(len(op.entries) == 1 for op in ops)

    def test_wide_mask_packs_everything(self):
        per_block = {7: [E(0x100 + 8 * i) for i in range(40)]}
        _, ops = plan_coalescing(per_block, coalesce_bits=64)
        assert len(ops) == 1
        assert len(ops[0].entries) == 40

    def test_shared_entries_across_blocks(self):
        per_block = {1: [E(0x100)], 2: [E(0x100), E(0x108)]}
        table, ops = plan_coalescing(per_block, coalesce_bits=8)
        assert len(table) == 2
        assert {op.block for op in ops} == {1, 2}

    def test_invalid_bits(self):
        with pytest.raises(PlanError):
            plan_coalescing({1: [E(0x100)]}, coalesce_bits=0)

    def test_efficiency_metric(self):
        per_block = {7: [E(0x100 + 8 * i) for i in range(6)]}
        _, ops = plan_coalescing(per_block, coalesce_bits=8)
        assert coalescing_efficiency(ops) == 6.0
        assert coalescing_efficiency([]) == 0.0
