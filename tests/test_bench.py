"""Benchmark harness: schema validation, determinism, CLI, smoke run."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    PHASES,
    run_bench,
    validate_bench_dict,
)
from repro.bench.__main__ import main as bench_main
from repro.errors import BenchError

# Short traces keep the suite fast; every phase still executes.
SMOKE_INSTRUCTIONS = 6000


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(
        apps=("wordpress",), instructions=SMOKE_INSTRUCTIONS, repeats=2
    )


def _strip_timings(report: dict) -> dict:
    stripped = copy.deepcopy(report)
    for record in stripped["apps"].values():
        record.pop("sim_speedup")
        for phase in record["phases"].values():
            phase.pop("seconds")
    for key in ("longest_trace_speedup", "geomean_sim_speedup"):
        stripped["summary"].pop(key)
    return stripped


class TestSmokeRun:
    def test_report_validates(self, smoke_report):
        validate_bench_dict(smoke_report)

    def test_all_phases_timed(self, smoke_report):
        record = smoke_report["apps"]["wordpress"]
        assert set(record["phases"]) == set(PHASES)
        for phase in record["phases"].values():
            assert phase["seconds"] >= 0.0

    def test_iteration_counts_match_repeats(self, smoke_report):
        for record in smoke_report["apps"].values():
            for phase in record["phases"].values():
                assert phase["iterations"] == 2

    def test_summary_names_the_benched_app(self, smoke_report):
        assert smoke_report["summary"]["longest_trace_app"] == "wordpress"

    def test_everything_but_timings_is_deterministic(self, smoke_report):
        again = run_bench(
            apps=("wordpress",), instructions=SMOKE_INSTRUCTIONS, repeats=2
        )
        assert _strip_timings(again) == _strip_timings(smoke_report)

    def test_report_is_json_serializable(self, smoke_report):
        validate_bench_dict(json.loads(json.dumps(smoke_report)))


class TestRunBenchValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(BenchError, match="unknown app"):
            run_bench(apps=("wordpress", "nosuchapp"), instructions=1000)

    def test_nonpositive_instructions_rejected(self):
        with pytest.raises(BenchError, match="instructions"):
            run_bench(apps=("wordpress",), instructions=0)

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(BenchError, match="repeats"):
            run_bench(apps=("wordpress",), instructions=1000, repeats=0)


class TestSchemaValidation:
    def test_missing_version_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        del bad["schema_version"]
        del bad["format"]
        with pytest.raises(BenchError, match="schema_version"):
            validate_bench_dict(bad)

    def test_unknown_version_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        bad["schema_version"] = BENCH_SCHEMA_VERSION + 1
        bad["format"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchError, match="unsupported"):
            validate_bench_dict(bad)

    def test_wrong_kind_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        bad["kind"] = "miss_profile"
        with pytest.raises(BenchError, match="kind"):
            validate_bench_dict(bad)

    def test_missing_phase_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        del bad["apps"]["wordpress"]["phases"]["sim_fast"]
        with pytest.raises(BenchError, match="sim_fast"):
            validate_bench_dict(bad)

    def test_negative_seconds_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        bad["apps"]["wordpress"]["phases"]["trace_gen"]["seconds"] = -1.0
        with pytest.raises(BenchError, match="seconds"):
            validate_bench_dict(bad)

    def test_foreign_longest_app_is_typed_error(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        bad["summary"]["longest_trace_app"] = "drupal"
        with pytest.raises(BenchError, match="longest_trace_app"):
            validate_bench_dict(bad)


class TestCli:
    def test_smoke_cli_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = bench_main(
            [
                "--smoke",
                "--apps",
                "wordpress",
                "--instructions",
                str(SMOKE_INSTRUCTIONS),
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        validate_bench_dict(data)
        assert data["settings"]["instructions"] == SMOKE_INSTRUCTIONS
        stdout = capsys.readouterr().out
        assert "wordpress" in stdout
        assert str(out) in stdout

    def test_unknown_app_is_usage_error(self, tmp_path, capsys):
        rc = bench_main(
            ["--smoke", "--apps", "nosuchapp", "--out", str(tmp_path / "b.json")]
        )
        assert rc == 2
        assert "unknown app" in capsys.readouterr().err

    def test_env_defaults_flow_through(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_BENCH_APPS", "wordpress")
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", str(SMOKE_INSTRUCTIONS))
        monkeypatch.setenv("REPRO_BENCH_OUT", str(out))
        rc = bench_main([])
        assert rc == 0
        data = json.loads(out.read_text())
        assert sorted(data["apps"]) == ["wordpress"]
        assert data["settings"]["instructions"] == SMOKE_INSTRUCTIONS
