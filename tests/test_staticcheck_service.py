"""Staticcheck layer 3 (service analyzer, rules A101–A106).

Two halves, mirroring the PR-4 style for the L-rules:

* **Mutation suite** — copies of the real service sources with one
  seeded defect each (blocking call in async, dropped await,
  unguarded shard mutation, fold-before-journal reorder, unpersisted
  ShardState field, untyped wire error).  Each defect must be caught
  by exactly its owning rule and by no other, and the unmutated copy
  must lint clean — so the rules gate real regressions without
  crying wolf.

* **Unit tests** — synthetic service-scope trees exercising each
  rule's positive/negative space: resolution chains, lock-held
  propagation, journal-absent CFG edges, coverage pairs, wire
  registry checks, and layer-3 suppression.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.staticcheck import SERVICE_RULES, lint_paths

SRC_ROOT = Path(repro.__file__).resolve().parent  # src/repro


def _closure_files():
    """Real-source relpaths the layer-3 closure lints together."""
    rels = ["errors.py", "experiments/parallel.py"]
    rels += sorted(
        f"service/{p.name}" for p in (SRC_ROOT / "service").glob("*.py")
    )
    # The drift engine is in the service analyzer's scope (it journals
    # canary verdicts and drives the service's async surface), so the
    # A-rule closure — and the clean-tree pin — covers it too.
    rels += sorted(
        f"drift/{p.name}" for p in (SRC_ROOT / "drift").glob("*.py")
    )
    return rels


def service_tree(tmp_path: Path, mutations=None) -> Path:
    """Copy the real service closure under tmp, with optional defects.

    ``mutations`` maps a relpath to ``(old, new)``; the old text must
    occur exactly once so a drifted source fails the test loudly
    instead of silently skipping the seeded defect.
    """
    mutations = dict(mutations or {})
    root = tmp_path / "tree"
    for rel in _closure_files():
        text = (SRC_ROOT / rel).read_text(encoding="utf-8")
        if rel in mutations:
            old, new = mutations.pop(rel)
            assert text.count(old) == 1, f"mutation anchor drifted in {rel}"
            text = text.replace(old, new)
        dest = root / "repro" / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(text, encoding="utf-8")
    assert not mutations, f"mutations for unknown files: {sorted(mutations)}"
    return root


def fired_rules(root: Path):
    return {f.rule for f in lint_paths([root], root=root)}


def write_tree(tmp_path: Path, files) -> Path:
    root = tmp_path / "synthetic"
    for rel, source in files.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestRealTreeClean:
    def test_service_closure_lints_clean(self, tmp_path):
        assert fired_rules(service_tree(tmp_path)) == set()


class TestMutationSuite:
    """One seeded defect per rule; each caught by exactly its owner."""

    def check(self, tmp_path, rel, old, new, owner):
        root = service_tree(tmp_path, {rel: (old, new)})
        assert fired_rules(root) == {owner}

    def test_blocking_call_in_async_is_a101(self, tmp_path):
        self.check(
            tmp_path,
            "service/server.py",
            "    async def _serve_plan(self, key: ShardKey) -> PlanVersion:\n"
            "        shard = self.buffer.get(key)\n",
            "    async def _serve_plan(self, key: ShardKey) -> PlanVersion:\n"
            "        time.sleep(0.001)\n"
            "        shard = self.buffer.get(key)\n",
            "A101",
        )

    def test_dropped_await_is_a102(self, tmp_path):
        self.check(
            tmp_path,
            "service/server.py",
            "\n            await self._build_shard(key)\n",
            "\n            self._build_shard(key)\n",
            "A102",
        )

    def test_unguarded_shard_mutation_is_a103(self, tmp_path):
        # De-locking the chaos hook orphans _reap_dead & friends: no
        # caller chain proves the RLock anymore, so their mutations of
        # _handles/_delivered lose their lock-held justification.
        self.check(
            tmp_path,
            "service/fleet.py",
            '        """Chaos hook: SIGKILL one worker and reap it immediately."""\n'
            "        with self._lock:\n"
            "            handle = self._handles.get(worker_id)\n"
            "            if handle is None:\n"
            '                raise FleetError(f"unknown fleet worker {worker_id!r}")\n'
            "            handle.process.kill()\n"
            "            handle.process.join(10.0)\n"
            "            handle.mark_dead()\n"
            "            self._reap_dead()\n",
            '        """Chaos hook: SIGKILL one worker and reap it immediately."""\n'
            "        handle = self._handles.get(worker_id)\n"
            "        if handle is None:\n"
            '            raise FleetError(f"unknown fleet worker {worker_id!r}")\n'
            "        handle.process.kill()\n"
            "        handle.process.join(10.0)\n"
            "        handle.mark_dead()\n"
            "        self._reap_dead()\n",
            "A103",
        )

    def test_fold_before_journal_is_a104(self, tmp_path):
        self.check(
            tmp_path,
            "service/server.py",
            '        """Fold one batch in; synchronous so shard order == queue order."""\n'
            "        if self.journal is not None:\n",
            '        """Fold one batch in; synchronous so shard order == queue order."""\n'
            "        self.buffer.ingest(batch)\n"
            "        if self.journal is not None:\n",
            "A104",
        )

    def test_unpersisted_field_is_a105(self, tmp_path):
        self.check(
            tmp_path,
            "service/ingest.py",
            "        self.built_generation = 0\n",
            "        self.built_generation = 0\n"
            "        self.window_bits = 0\n",
            "A105",
        )

    def test_untyped_wire_error_is_a106(self, tmp_path):
        self.check(
            tmp_path,
            "service/http.py",
            '        raise TransportError(f"no endpoint for {method} {path}")\n',
            '        raise ValueError(f"no endpoint for {method} {path}")\n',
            "A106",
        )


class TestNoBlockingInAsync:
    def test_primitive_and_resolved_chain(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/service/mini.py": """
                    import time

                    def _sync_write(path):
                        with open(path, "a") as fh:
                            fh.write("x")

                    def _hop(path):
                        _sync_write(path)

                    async def direct():
                        time.sleep(0.1)

                    async def chained(path):
                        _hop(path)
                """,
            },
        )
        findings = [
            f for f in lint_paths([root], root=root) if f.rule == "A101"
        ]
        assert len(findings) == 2
        chain = next(f for f in findings if "chained" in f.message)
        assert "blocks the event loop" in chain.message
        assert "_sync_write()" in chain.message  # reason chain names the hop

    def test_executor_reference_is_clean_and_suppression_works(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/service/mini.py": """
                    import asyncio
                    import time

                    def _sync_sleep():
                        time.sleep(0.1)

                    async def offloaded():
                        loop = asyncio.get_running_loop()
                        await loop.run_in_executor(None, _sync_sleep)

                    async def audited():
                        time.sleep(0.1)  # staticcheck: disable=A101 (test fixture)
                """,
            },
        )
        assert fired_rules(root) == set()


class TestUnawaitedCoroutine:
    def test_dropped_vs_consumed(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/service/mini.py": """
                    import asyncio

                    async def work():
                        return 1

                    async def dropped():
                        work()

                    async def consumed():
                        await work()
                        task = asyncio.ensure_future(work())
                        return [work(), task]
                """,
            },
        )
        findings = [f for f in lint_paths([root], root=root)]
        assert {f.rule for f in findings} == {"A102"}
        assert len(findings) == 1
        assert "dropped" in findings[0].message


class TestLockDiscipline:
    FLEET = """
        import threading

        class FleetRouter:
            def __init__(self):
                self._lock = threading.RLock()
                self._handles = {}
                self._delivered = {}

            def locked_entry(self, wid):
                with self._lock:
                    self._handles[wid] = 1
                    self._reap_dead()

            def _reap_dead(self):
                self._delivered.clear()
    """

    def test_propagated_lock_held_helper_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {"repro/service/fleet.py": self.FLEET})
        assert fired_rules(root) == set()

    def test_unlocked_mutation_and_orphaned_helper(self, tmp_path):
        source = (
            self.FLEET
            + """
            def rogue(self, wid):
                self._handles.pop(wid, None)
                self._reap_dead()
        """
        )
        root = write_tree(tmp_path, {"repro/service/fleet.py": source})
        findings = [f for f in lint_paths([root], root=root)]
        assert {f.rule for f in findings} == {"A103"}
        # rogue's direct pop, plus _reap_dead's clear: the unlocked
        # call site broke the helper's every-caller-holds-it proof.
        assert len(findings) == 2


class TestJournalBeforeFold:
    MINI = """
        class IngestJournal:
            def record(self, batch):
                pass

        class IngestBuffer:
            def ingest(self, batch):
                pass

        class Svc:
            def __init__(self):
                self.journal = IngestJournal()
                self.buffer = IngestBuffer()

            def {name}(self, batch):
        {body}
    """

    def build(self, tmp_path, name, body):
        source = textwrap.dedent(self.MINI).format(
            name=name, body=textwrap.indent(textwrap.dedent(body), "        ")
        )
        return write_tree(tmp_path, {"repro/service/server.py": source})

    def test_journal_first_is_clean(self, tmp_path):
        root = self.build(
            tmp_path,
            "good",
            """
            if self.journal is not None:
                self.journal.record(batch)
            self.buffer.ingest(batch)
            """,
        )
        assert fired_rules(root) == set()

    def test_fold_first_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path,
            "bad",
            """
            self.buffer.ingest(batch)
            if self.journal is not None:
                self.journal.record(batch)
            """,
        )
        assert fired_rules(root) == {"A104"}

    def test_fold_only_restore_is_out_of_scope(self, tmp_path):
        root = self.build(
            tmp_path,
            "restore",
            """
            for item in batch:
                self.buffer.ingest(item)
            """,
        )
        assert fired_rules(root) == set()


class TestSnapshotCoverage:
    def test_uncovered_field_names_both_halves(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/service/ingest.py": """
                    class ShardState:
                        def __init__(self, key):
                            self.key = key
                            self.extra = 0
                            self._private = 0
                """,
                "repro/service/persist.py": """
                    def shard_to_dict(shard):
                        return {"key": shard.key}

                    def shard_from_dict(data):
                        key = data["key"]
                        return key
                """,
            },
        )
        findings = [f for f in lint_paths([root], root=root)]
        assert {f.rule for f in findings} == {"A105"}
        assert len(findings) == 1
        assert "ShardState.extra" in findings[0].message
        assert "shard_to_dict" in findings[0].message
        assert "shard_from_dict" in findings[0].message
        # The finding anchors at the field's own definition line.
        assert findings[0].location.endswith("ingest.py")


class TestTypedWireErrors:
    def test_builtin_unregistered_and_unstamped(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/errors.py": """
                    class ReproError(Exception):
                        pass

                    class ServiceError(ReproError):
                        pass

                    class TransportError(ServiceError):
                        pass

                    class PlanError(ReproError):
                        pass
                """,
                "repro/service/http.py": """
                    WIRE_SCHEMA_VERSION = 1

                    _WIRE_ERRORS = {
                        cls.__name__: cls
                        for cls in (ServiceError, TransportError)
                    }

                    def handler(writer, method):
                        if method == "bad":
                            raise ValueError("nope")
                        if method == "unregistered":
                            raise PlanError("x")
                        writer.write({"schema_version": WIRE_SCHEMA_VERSION})

                    def unstamped(writer):
                        writer.write(b"x")

                    def registry_derived(writer, name):
                        cls = _WIRE_ERRORS.get(name, ServiceError)
                        raise cls("ok")
                """,
            },
        )
        findings = [f for f in lint_paths([root], root=root)]
        assert {f.rule for f in findings} == {"A106"}
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        assert "builtin ValueError" in messages
        assert "PlanError" in messages
        assert "unstamped() writes to the wire" in messages


class TestCatalog:
    def test_service_rule_ids(self):
        assert set(SERVICE_RULES) == {
            "A101", "A102", "A103", "A104", "A105", "A106",
        }

    def test_suppressing_wrong_rule_does_not_silence(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/service/mini.py": """
                    import time

                    async def wrong():
                        time.sleep(0.1)  # staticcheck: disable=A102
                """,
            },
        )
        assert fired_rules(root) == {"A101"}
