"""TAGE-lite direction predictor behaviour."""

import random

import pytest

from repro.config import FrontendConfig
from repro.frontend.direction import TageLite, _geometric_lengths


class TestGeometricLengths:
    def test_single_table(self):
        assert _geometric_lengths(1, 4, 128) == [4]

    def test_endpoints(self):
        lengths = _geometric_lengths(6, 4, 128)
        assert lengths[0] == 4
        assert lengths[-1] == 128

    def test_monotone_increasing(self):
        lengths = _geometric_lengths(6, 4, 128)
        assert all(a <= b for a, b in zip(lengths, lengths[1:]))


class TestTageLite:
    def test_learns_single_always_taken(self):
        t = TageLite()
        for _ in range(200):
            t.update(0x1000, True)
        assert t.predict(0x1000) is True
        assert t.accuracy() > 0.95

    def test_learns_always_not_taken(self):
        t = TageLite()
        for _ in range(200):
            t.update(0x1000, False)
        assert t.predict(0x1000) is False

    def test_learns_fixed_trip_count_loop(self):
        t = TageLite()
        for _ in range(2000):
            for _ in range(7):
                t.update(0x2000, True)
            t.update(0x2000, False)
        # After training, the exit is history-predictable.
        assert t.accuracy() > 0.98

    def test_learns_alternating_pattern(self):
        t = TageLite()
        for i in range(4000):
            t.update(0x3000, bool(i % 2))
        assert t.accuracy() > 0.9

    def test_biased_branch_mix_accuracy(self):
        rng = random.Random(42)
        t = TageLite()
        branches = [
            (0x1000 + i * 16, 0.97 if rng.random() < 0.5 else 0.03)
            for i in range(500)
        ]
        for _ in range(30_000):
            pc, p = branches[rng.randrange(len(branches))]
            t.update(pc, rng.random() < p)
        assert t.accuracy() > 0.9

    def test_update_returns_correctness(self):
        t = TageLite()
        for _ in range(100):
            t.update(0x1000, True)
        assert t.update(0x1000, True) is True
        assert t.update(0x1000, False) is False

    def test_predict_is_read_mostly(self):
        t = TageLite()
        for _ in range(50):
            t.update(0x40, True)
        before = t.predictions
        t.predict(0x40)
        # predict() does not count as a scored prediction.
        assert t.predictions == before

    def test_custom_geometry(self):
        cfg = FrontendConfig(tage_tables=3, tage_entries_per_table=256)
        t = TageLite(cfg)
        assert t.n_tables == 3
        for _ in range(100):
            t.update(0x5000, True)
        assert t.predict(0x5000) is True

    def test_distinct_branches_independent(self):
        t = TageLite()
        for _ in range(300):
            t.update(0x1000, True)
            t.update(0x9000, False)
        assert t.predict(0x1000) is True
        assert t.predict(0x9000) is False
