"""The example scripts run end to end (smoke level, tiny budgets)."""

import subprocess
import sys
import os

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py", "wordpress", "80000")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout
        assert "BTB MPKI" in proc.stdout

    def test_characterization(self):
        proc = _run("btb_characterization.py", "wordpress", "300000")
        assert proc.returncode == 0, proc.stderr
        assert "3C miss classification" in proc.stdout
        assert "Temporal miss streams" in proc.stdout

    def test_injection_walkthrough(self):
        proc = _run("injection_walkthrough.py", "wordpress")
        assert proc.returncode == 0, proc.stderr
        assert "Conditional-probability table" in proc.stdout
        assert "Chosen injection sites" in proc.stdout

    def test_design_space_sweep(self):
        proc = _run("design_space_sweep.py", "wordpress", "120000")
        assert proc.returncode == 0, proc.stderr
        assert "Prefetch distance sweep" in proc.stdout
        assert "Coalesce bitmask sweep" in proc.stdout

    def test_reuse_distance_analysis(self):
        proc = _run("reuse_distance_analysis.py", "wordpress", "150000")
        assert proc.returncode == 0, proc.stderr
        assert "Reuse-distance histogram" in proc.stdout
        # The stack-distance prediction must agree with the LRU replay.
        lines = proc.stdout.splitlines()
        pred = next(l for l in lines if "prediction" in l).split()[-1]
        replay = next(l for l in lines if "LRU replay" in l).split()[-1]
        assert pred == replay
