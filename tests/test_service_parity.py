"""Online == offline plan parity across the full app catalog.

The acceptance property of the plan service: with lossless ingest
defaults (hot_threshold=1, reservoir at least the stream size), the
plan served after streaming an app's miss samples is site-for-site
identical to the offline ``collect_profile`` → ``build_plan`` result —
the online path adds transport, not analysis.
"""

from repro.service.bench import FleetConfig, run_fleet
from repro.workloads.apps import app_names


def test_fleet_parity_all_apps():
    cfg = FleetConfig(
        apps=app_names(),
        trace_instructions=12_000,
        batch_size=64,
        workers=2,
        # Coalesce background rebuilds: one verified build per shard
        # (the get_plan read-your-writes build) keeps the test fast.
        debounce_s=30.0,
        check_parity=True,
        check_plans=True,
    )
    report = run_fleet(cfg)
    assert sorted(report.apps) == sorted(app_names())
    for app, result in sorted(report.apps.items()):
        assert result.stream_samples > 0, f"{app}: no miss samples streamed"
        assert result.parity is True, (
            f"{app}: served plan diverged from the offline pipeline"
        )
        assert result.served_version >= 1
    assert report.parity_ok is True
    assert report.drained_clean
    assert report.sheds == 0
    assert report.deadline_expired == 0


def test_fleet_parity_survives_batch_size_choice():
    """Batching is transport framing; it must not affect the plan."""
    base = dict(
        apps=("wordpress",),
        trace_instructions=12_000,
        workers=1,
        debounce_s=30.0,
    )
    small = run_fleet(FleetConfig(batch_size=7, **base))
    large = run_fleet(FleetConfig(batch_size=512, **base))
    assert small.apps["wordpress"].parity is True
    assert large.apps["wordpress"].parity is True
