"""Structural contracts of the figure computations.

A stub runner with canned results exercises every figNN function's
aggregation logic (means, normalizations, series shapes) without any
simulation, so regressions in the harness itself surface instantly.
"""

from typing import Dict

import pytest

from repro.config import SimConfig
from repro.experiments import figures
from repro.uarch.results import SimResult


class StubRunner:
    """Mimics ExperimentRunner with deterministic canned numbers."""

    def __init__(self, apps=("alpha", "beta")):
        self.apps = tuple(apps)
        self.calls: list = []

    # --- canned simulation results ------------------------------------
    def warm(self, requests, jobs=None):
        # Figures issue a warm pre-pass before their aggregation loop;
        # the stub computes results on demand, so there is nothing to do.
        return []

    def run(self, app, system, input_idx=None, config=None,
            profile_input=None, cache_tag=""):
        self.calls.append((app, system, input_idx, cache_tag))
        cycles = {
            "baseline": 1000,
            "ideal_btb": 800,
            "ideal_icache": 850,
            "shotgun": 990,
            "confluence": 980,
            "twig": 900,
        }[system]
        # Config perturbations nudge cycles so sweeps are non-constant.
        if config is not None:
            cycles += (config.frontend.btb.entries != 8192) * 5
            cycles += (config.twig.prefetch_distance - 20)
        res = SimResult(label=f"{app}/{system}", instructions=6000, cycles=cycles)
        res.btb_accesses = 1000
        res.btb_misses = {"baseline": 100, "ideal_btb": 0}.get(system, 60)
        res.btb_covered_misses = 40 if system == "twig" else 0
        res.btb_accesses_by_kind = {
            "cond_direct": 700, "uncond_direct": 150, "call_direct": 150
        }
        res.btb_misses_by_kind = {
            "cond_direct": 50, "uncond_direct": 25, "call_direct": 25
        }
        res.prefetches_issued = 100 if system != "baseline" else 0
        res.prefetches_used = 30 if system != "baseline" else 0
        res.extra_dynamic_instructions = 120 if system == "twig" else 0
        res.mispredict_cycles = 50
        return res

    def speedup(self, app, system, **kw):
        base = self.run(app, "baseline", input_idx=kw.get("input_idx"))
        return self.run(app, system, **kw).speedup_over(base)

    def miss_reduction(self, app, system, **kw):
        base = self.run(app, "baseline", input_idx=kw.get("input_idx"))
        res = self.run(app, system, **kw)
        return max(0.0, 1.0 - res.btb_mpki() / base.btb_mpki())


@pytest.fixture()
def stub():
    return StubRunner()


class TestScalarFigures:
    def test_fig01_structure(self, stub):
        r = figures.fig01_frontend_bound(stub)
        assert set(r["per_app"]) == {"alpha", "beta"}
        assert 0 <= r["average"] <= 1

    def test_fig02_values(self, stub):
        r = figures.fig02_limit_study(stub)
        assert r["average"]["ideal_btb"] == pytest.approx(25.0)
        assert r["average"]["ideal_icache"] == pytest.approx(1000 / 850 * 100 - 100)

    def test_fig03(self, stub):
        r = figures.fig03_btb_mpki(stub)
        assert r["per_app"]["alpha"] == pytest.approx(100 / 6)

    def test_fig07_normalized(self, stub):
        r = figures.fig07_access_breakdown(stub)
        assert sum(r["average"].values()) == pytest.approx(1.0)

    def test_fig08_normalized(self, stub):
        r = figures.fig08_miss_breakdown(stub)
        assert sum(r["average"].values()) == pytest.approx(1.0)

    def test_fig09(self, stub):
        r = figures.fig09_prior_speedups(stub)
        assert r["average"]["shotgun"] == pytest.approx(1000 / 990 * 100 - 100)

    def test_fig16_structure(self, stub):
        r = figures.fig16_speedup(stub)
        avg = r["average"]
        assert avg["ideal_btb"] > avg["twig"] > avg["shotgun"]
        assert set(r["per_app"]["alpha"]) == {"twig", "ideal_btb", "shotgun", "btb_32k"}

    def test_fig17_uses_miss_reduction(self, stub):
        r = figures.fig17_coverage(stub)
        assert r["average"]["twig"] == pytest.approx(1.0 - 60 / 100)

    def test_fig19_accuracy(self, stub):
        r = figures.fig19_accuracy(stub)
        assert r["average"]["twig"] == pytest.approx(0.3)

    def test_fig22_overhead(self, stub):
        r = figures.fig22_dynamic_overhead(stub)
        assert r["average"] == pytest.approx(120 / 5880)


class TestSweepFigures:
    def test_fig26_series_shape(self, stub):
        r = figures.fig26_prefetch_distance(stub, distances=(0, 20), apps=("alpha",))
        assert set(r["series"]) == {0, 20}
        assert "twig" in r["series"][0]

    def test_fig28_series_shape(self, stub):
        r = figures.fig28_ftq_runahead(stub, ftq_sizes=(4, 24), apps=("alpha",))
        assert set(r["series"]) == {4, 24}

    def test_pct_of_ideal_zero_guard(self, stub):
        # ideal == baseline -> 0% rather than a division blowup.
        class NoGainStub(StubRunner):
            def run(self, app, system, **kw):
                res = super().run(app, system, **kw)
                res.cycles = 1000
                return res

        v = figures._pct_of_ideal(NoGainStub(), "alpha", "twig", SimConfig(), "t")
        assert v == 0.0


class TestCrossInput:
    def test_fig20_normalizes_by_ideal(self, stub):
        r = figures.fig20_cross_input(stub, test_inputs=(1,))
        vals = r["per_app"]["alpha"]
        # twig speedup / ideal speedup = (1000/900-1)/(1000/800-1)
        expected = 100 * (1000 / 900 - 1) / (1000 / 800 - 1)
        assert vals["training_profile"][0] == pytest.approx(expected)
        assert vals["same_input"][0] == pytest.approx(expected)
