"""End-to-end Twig pipeline on the tiny workload."""

import pytest

from repro.config import SimConfig
from repro.core.twig import TwigOptimizer, build_plan, run_with_plan
from repro.prefetchers.base import BaselineBTBSystem
from repro.profiling.collector import collect_profile
from repro.uarch.sim import simulate


@pytest.fixture(scope="module")
def pipeline(request):
    """Workload, traces, baseline result, profile, plan (built once)."""
    from repro.trace.walker import generate_trace
    from repro.workloads.cfg import build_workload
    from tests.conftest import make_tiny_spec

    # A stressed tiny app: small BTB makes misses plentiful.
    spec = make_tiny_spec(name="twigapp", functions=200, popularity_exponent=0.2)
    wl = build_workload(spec, seed=3)
    train = generate_trace(wl, spec.make_input(0), max_instructions=120_000)
    test = generate_trace(wl, spec.make_input(1), max_instructions=120_000)
    cfg = SimConfig().with_btb(entries=512)
    base = simulate(wl, test, cfg, BaselineBTBSystem(cfg))
    profile = collect_profile(wl, train, cfg)
    plan = build_plan(wl, profile, cfg)
    return wl, train, test, cfg, base, profile, plan


class TestBuildPlan:
    def test_plan_nonempty(self, pipeline):
        *_, profile, plan = pipeline
        assert plan.total_ops() > 0
        assert plan.misses_with_site > 0
        assert plan.misses_with_site <= plan.misses_targeted == len(profile.miss_pcs())

    def test_plan_entries_are_real_branches(self, pipeline):
        wl, *_, plan = pipeline
        pcs = set(wl.branch_pc)
        for ops in plan.ops_by_block.values():
            for op in ops:
                for pc, target, kind in op.entries:
                    assert pc in pcs

    def test_plan_targets_match_binary(self, pipeline):
        wl, *_, plan = pipeline
        target_of = {
            wl.branch_pc[b]: wl.branch_target[b]
            for b in range(wl.n_blocks)
            if wl.branch_pc[b] >= 0
        }
        for ops in plan.ops_by_block.values():
            for op in ops:
                for pc, target, _ in op.entries:
                    assert target == target_of[pc]

    def test_coalesce_table_sorted(self, pipeline):
        *_, plan = pipeline
        pcs = [e[0] for e in plan.table]
        assert pcs == sorted(pcs)

    def test_software_only_plan_has_no_table(self, pipeline):
        wl, train, test, cfg, base, profile, _ = pipeline
        sw_cfg = cfg.with_twig(enable_coalescing=False)
        plan = build_plan(wl, profile, sw_cfg)
        assert plan.table == ()
        assert plan.total_ops() > 0

    def test_coalescing_shrinks_static_bytes(self, pipeline):
        wl, train, test, cfg, base, profile, full_plan = pipeline
        sw_cfg = cfg.with_twig(enable_coalescing=False)
        sw_plan = build_plan(wl, profile, sw_cfg)
        # Coalescing exists to reduce code bloat: fewer injected bytes
        # per covered entry.
        full_per_entry = full_plan.static_bytes() / max(
            1, full_plan.total_prefetch_entries()
        )
        sw_per_entry = sw_plan.static_bytes() / max(1, sw_plan.total_prefetch_entries())
        assert full_per_entry <= sw_per_entry


class TestRunWithPlan:
    def test_twig_reduces_misses(self, pipeline):
        wl, train, test, cfg, base, profile, plan = pipeline
        res = run_with_plan(wl, test, plan, cfg)
        assert res.btb_mpki() < base.btb_mpki()

    def test_twig_speeds_up(self, pipeline):
        wl, train, test, cfg, base, profile, plan = pipeline
        res = run_with_plan(wl, test, plan, cfg)
        assert res.cycles < base.cycles

    def test_dynamic_overhead_positive_but_bounded(self, pipeline):
        wl, train, test, cfg, base, profile, plan = pipeline
        res = run_with_plan(wl, test, plan, cfg)
        assert 0.0 < res.dynamic_overhead() < 0.3

    def test_prefetch_ops_executed(self, pipeline):
        wl, train, test, cfg, base, profile, plan = pipeline
        res = run_with_plan(wl, test, plan, cfg)
        assert res.prefetch_ops_executed > 0
        assert res.prefetches_issued >= res.prefetches_used > 0

    def test_same_input_at_least_as_good(self, pipeline):
        wl, train, test, cfg, base, profile, plan = pipeline
        cross = run_with_plan(wl, test, plan, cfg)
        same_profile = collect_profile(wl, test, cfg)
        same_plan = build_plan(wl, same_profile, cfg)
        same = run_with_plan(wl, test, same_plan, cfg)
        assert same.btb_mpki() <= cross.btb_mpki() * 1.1


class TestTwigOptimizer:
    def test_bundles_pipeline(self, pipeline):
        wl, train, test, cfg, base, profile, _ = pipeline
        opt = TwigOptimizer(wl, cfg)
        plan = opt.plan_from_profile(profile)
        res = opt.simulate(test, plan)
        assert res.btb_covered_misses > 0
