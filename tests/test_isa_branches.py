"""Branch model: kinds, classification, offset encodability."""

import pytest

from repro.isa.branches import (
    Branch,
    BranchKind,
    bits_for_offset,
    offset_fits,
)


class TestBranchKind:
    @pytest.mark.parametrize(
        "kind,direct",
        [
            (BranchKind.COND_DIRECT, True),
            (BranchKind.UNCOND_DIRECT, True),
            (BranchKind.CALL_DIRECT, True),
            (BranchKind.CALL_INDIRECT, False),
            (BranchKind.JUMP_INDIRECT, False),
            (BranchKind.RETURN, False),
        ],
    )
    def test_is_direct(self, kind, direct):
        assert kind.is_direct is direct

    def test_only_cond_is_conditional(self):
        conds = [k for k in BranchKind if k.is_conditional]
        assert conds == [BranchKind.COND_DIRECT]

    def test_calls(self):
        assert BranchKind.CALL_DIRECT.is_call
        assert BranchKind.CALL_INDIRECT.is_call
        assert not BranchKind.RETURN.is_call

    def test_indirect(self):
        assert BranchKind.JUMP_INDIRECT.is_indirect
        assert not BranchKind.UNCOND_DIRECT.is_indirect

    def test_btb_kinds_are_exactly_direct(self):
        for k in BranchKind:
            assert k.uses_btb == k.is_direct


class TestBranch:
    def test_basic_construction(self):
        b = Branch(pc=0x1000, kind=BranchKind.UNCOND_DIRECT, target=0x2000)
        assert b.target_offset() == 0x1000

    def test_conditional_requires_fallthrough(self):
        with pytest.raises(ValueError):
            Branch(pc=0x1000, kind=BranchKind.COND_DIRECT, target=0x2000)

    def test_conditional_with_fallthrough(self):
        b = Branch(
            pc=0x1000,
            kind=BranchKind.COND_DIRECT,
            target=0x2000,
            fallthrough=0x1004,
            taken_bias=0.7,
        )
        assert b.fallthrough == 0x1004

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            Branch(pc=-1, kind=BranchKind.RETURN, target=0)

    def test_bad_bias_rejected(self):
        with pytest.raises(ValueError):
            Branch(
                pc=0x10,
                kind=BranchKind.COND_DIRECT,
                target=0x20,
                fallthrough=0x14,
                taken_bias=1.5,
            )

    def test_backward_target_offset_negative(self):
        b = Branch(pc=0x2000, kind=BranchKind.UNCOND_DIRECT, target=0x1000)
        assert b.target_offset() == -0x1000

    def test_branch_is_hashable_value(self):
        a = Branch(pc=0x10, kind=BranchKind.RETURN, target=0)
        b = Branch(pc=0x10, kind=BranchKind.RETURN, target=0)
        assert a == b
        assert hash(a) == hash(b)


class TestOffsetEncoding:
    @pytest.mark.parametrize(
        "offset,bits,fits",
        [
            (0, 1, True),
            (-1, 1, True),
            (1, 1, False),
            (2047, 12, True),
            (2048, 12, False),
            (-2048, 12, True),
            (-2049, 12, False),
        ],
    )
    def test_offset_fits_boundaries(self, offset, bits, fits):
        assert offset_fits(offset, bits) is fits

    def test_offset_fits_zero_bits(self):
        assert not offset_fits(0, 0)

    @pytest.mark.parametrize("offset", [0, 1, -1, 100, -100, 2047, -2048, 1 << 30])
    def test_bits_for_offset_is_minimal(self, offset):
        bits = bits_for_offset(offset)
        assert offset_fits(offset, bits)
        if bits > 1:
            assert not offset_fits(offset, bits - 1)
