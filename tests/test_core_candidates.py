"""Injection-site selection: Fig 13's worked example and edge cases."""

import pytest

from repro.config import TwigConfig
from repro.core.candidates import (
    CandidateSelection,
    conditional_probability_table,
    select_injection_sites,
)
from repro.profiling.profile import MissProfile

# Block ids used in the Fig 13 style fixtures.
A_BLOCK, B, C, D, E = 100, 1, 2, 3, 4
A_PC = 0xA000


def _profile_fig13() -> MissProfile:
    """A profile shaped like Fig 13: miss at A, predecessors B/C/D/E.

    C has high conditional probability and covers most windows; E
    covers the remainder.  B is hot (appears everywhere, low
    probability).  All leads exceed the 20-cycle distance.
    """
    prof = MissProfile()
    # Six misses at A. C appears (timely) in four, E in two.
    windows = [
        ((B, 60.0), (C, 40.0)),
        ((B, 55.0), (C, 42.0)),
        ((C, 38.0), (B, 30.0)),
        ((B, 44.0), (C, 33.0)),
        ((E, 50.0), (D, 25.0)),
        ((D, 45.0), (E, 30.0)),
    ]
    for w in windows:
        prof.add_sample(A_PC, A_BLOCK, w)
    # B executes a lot elsewhere too (other misses observed it).
    for _ in range(12):
        prof.add_sample(0xB000, 200, ((B, 30.0),))
    # D executes elsewhere as well, diluting its probability.
    for _ in range(4):
        prof.add_sample(0xC000, 300, ((D, 30.0),))
    return prof


class TestFig13Example:
    def test_selects_c_then_e(self):
        prof = _profile_fig13()
        cfg = TwigConfig(prefetch_distance=20, min_confidence=0.05, min_miss_samples=1)
        sels = select_injection_sites(prof, cfg)
        sel = next(s for s in sels if s.miss_pc == A_PC)
        chosen = [blk for blk, _, _ in sel.sites]
        assert chosen[0] == C  # highest conditional probability
        assert E in chosen     # covers the remaining misses
        assert sel.coverage() == 1.0

    def test_probability_table_matches_hand_computation(self):
        prof = _profile_fig13()
        rows = {blk: (total, cov, p) for blk, total, cov, p in
                conditional_probability_table(prof, A_PC, prefetch_distance=20)}
        # C: 4 covered / 4 occurrences -> 1.0
        assert rows[C] == (4, 4, 1.0)
        # B: 4 covered of 16 occurrences -> 0.25
        assert rows[B][0] == 16
        assert rows[B][2] == pytest.approx(0.25)
        # E: 2 of 2 -> 1.0
        assert rows[E] == (2, 2, 1.0)

    def test_timeliness_constraint_excludes_close_blocks(self):
        prof = MissProfile()
        prof.add_sample(A_PC, A_BLOCK, ((B, 5.0), (C, 50.0)))
        cfg = TwigConfig(prefetch_distance=20, min_miss_samples=1)
        sels = select_injection_sites(prof, cfg)
        sel = sels[0]
        assert [blk for blk, _, _ in sel.sites] == [C]

    def test_no_timely_predecessor_no_selection(self):
        prof = MissProfile()
        prof.add_sample(A_PC, A_BLOCK, ((B, 5.0), (C, 3.0)))
        cfg = TwigConfig(prefetch_distance=20, min_miss_samples=1)
        assert select_injection_sites(prof, cfg) == []

    def test_min_samples_filter(self):
        prof = MissProfile()
        prof.add_sample(A_PC, A_BLOCK, ((B, 50.0),))
        cfg = TwigConfig(min_miss_samples=2)
        assert select_injection_sites(prof, cfg) == []

    def test_confidence_floor(self):
        prof = MissProfile()
        # B appears in 1 window for A but 100 windows total: P = 0.01,
        # below the 0.05 floor, so A gets no site (the other miss PC,
        # for which B has P ~ 0.99, legitimately does).
        prof.add_sample(A_PC, A_BLOCK, ((B, 50.0),))
        for _ in range(99):
            prof.add_sample(0xB000, 200, ((B, 30.0),))
        cfg = TwigConfig(min_confidence=0.05, min_miss_samples=1)
        sels = select_injection_sites(prof, cfg)
        assert all(s.miss_pc != A_PC for s in sels)

    def test_max_sites_cap(self):
        prof = MissProfile()
        # Five disjoint predecessor contexts.
        for i in range(5):
            prof.add_sample(A_PC, A_BLOCK, ((10 + i, 50.0),))
        cfg = TwigConfig(min_miss_samples=1)
        sels = select_injection_sites(prof, cfg, max_sites_per_miss=3)
        assert len(sels[0].sites) == 3
        assert sels[0].covered_samples == 3

    def test_duplicate_block_in_window_counts_once(self):
        prof = MissProfile()
        prof.add_sample(A_PC, A_BLOCK, ((B, 60.0), (B, 40.0)))
        cfg = TwigConfig(min_miss_samples=1)
        sels = select_injection_sites(prof, cfg)
        blk, prob, covered = sels[0].sites[0]
        assert blk == B and covered == 1


class TestCandidateSelection:
    def test_coverage_math(self):
        sel = CandidateSelection(
            miss_pc=1, miss_block=2, sites=((3, 0.5, 4), (5, 0.4, 2)), total_samples=10
        )
        assert sel.covered_samples == 6
        assert sel.coverage() == 0.6

    def test_empty_total(self):
        sel = CandidateSelection(miss_pc=1, miss_block=2, sites=(), total_samples=0)
        assert sel.coverage() == 0.0
