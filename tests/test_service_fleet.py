"""Fault-injection tests for the sharded multi-process fleet.

The contract under test (DESIGN.md §13): the fleet layer adds
placement, durability, and elasticity around today's ``PlanService``
but never analysis, so the online==offline plan-parity oracle must
hold through worker crashes (journal replay), rebalances under skew,
autoscaler actions, and a fleet-wide drain.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.config import ConfigError, SimConfig
from repro.core.twig import build_plan
from repro.errors import FleetError, ServiceOverload, WorkerCrashed
from repro.service.bench import (
    ShardedFleetConfig,
    collect_sample_stream,
    run_fleet_sharded,
)
from repro.service.build import plans_equivalent
from repro.service.fleet import (
    DECISION_SCHEMA_VERSION,
    AllocationDecision,
    Autoscaler,
    FleetConfig,
    FleetRouter,
)
from repro.service.journal import read_journal
from repro.service.server import ServiceConfig, default_workload_resolver
from repro.trace.walker import generate_trace
from repro.workloads.apps import app_names

SIM_CFG = SimConfig()
BATCH = 64


@pytest.fixture(scope="module")
def app_streams():
    """Offline ground truth for two real apps: label, profile, stream."""
    resolver = default_workload_resolver()
    out = {}
    for app in ("wordpress", "drupal"):
        workload = resolver(app)
        inp = workload.spec.make_input(0)
        trace = generate_trace(workload, inp, max_instructions=6_000)
        profile, stream = collect_sample_stream(workload, trace, SIM_CFG)
        out[app] = (trace.label, profile, stream)
    return out


def chunks(stream):
    return [stream[i : i + BATCH] for i in range(0, len(stream), BATCH)]


def offline_plan(app, profile):
    return build_plan(default_workload_resolver()(app), profile, SIM_CFG)


def make_router(**overrides) -> FleetRouter:
    fleet_kwargs = {"workers": 2, "seed": 1}
    fleet_kwargs.update(overrides)
    return FleetRouter(
        config=FleetConfig(**fleet_kwargs),
        service_config=ServiceConfig(
            reservoir_capacity=1 << 20,
            deadline_ms=60_000,
            debounce_s=30.0,
        ),
        sim_config=SIM_CFG,
    )


# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_worker_kill_mid_stream_replays_to_identical_plans(
        self, app_streams
    ):
        """SIGKILL a primary mid-stream; journal replay must converge."""
        with make_router(workers=2) as router:
            batches = {app: chunks(s[2]) for app, s in app_streams.items()}
            # First batch of each shard lands before the crash.
            for app, (label, _p, _s) in app_streams.items():
                router.ingest(app, label, batches[app][0], seq=0)
            victim = router.ring.primary(("wordpress", app_streams["wordpress"][0]))
            router.kill_worker(victim)
            assert router.crashed_workers == [victim]
            # The pool healed to its configured size with a fresh worker.
            assert len(router.ring) == 2
            assert victim not in router.ring
            # Rest of both streams, post-crash.
            for app, (label, _p, _s) in app_streams.items():
                for seq, chunk in enumerate(batches[app][1:], start=1):
                    router.ingest(app, label, chunk, seq=seq)
            for app, (label, profile, _s) in app_streams.items():
                version = router.get_plan(app, label)
                assert plans_equivalent(version.plan, offline_plan(app, profile))
            counters = router.metrics.counters
            assert counters.get("fleet.worker_crashes") == 1
            assert counters.get("fleet.workers_replaced") == 1
            assert counters.get("fleet.replayed_batches", 0) >= 1
            report = router.stop()
            assert report["abandoned_shards"] == []

    def test_crashed_ack_is_journaled_not_lost(self, app_streams):
        """A WorkerCrashed ack means the batch IS durable: no resend."""
        label, profile, stream = app_streams["wordpress"]
        with make_router(workers=1, min_workers=1) as router:
            pending = []
            for seq, chunk in enumerate(chunks(stream)):
                pending.append(
                    router.ingest_async("wordpress", label, chunk, seq=seq)
                )
            journaled = router.journal.count(("wordpress", label))
            assert journaled == len(chunks(stream))
            # Kill the only worker with acks potentially in flight.
            router.kill_worker(router.ring.workers()[0])
            # A WorkerCrashed ack (if the kill beat the worker to any
            # batch) does not reduce durability; a clean ack is equally
            # fine — parity through replay is the oracle either way.
            for future in pending:
                try:
                    future.result(timeout=60.0)
                except WorkerCrashed:
                    pass
            version = router.get_plan("wordpress", label)
            assert plans_equivalent(version.plan, offline_plan("wordpress", profile))
            assert router.journal.count(("wordpress", label)) == journaled


# ----------------------------------------------------------------------
class TestRebalanceAndDrain:
    def test_rebalance_during_ingest_preserves_parity(self, app_streams):
        with make_router(workers=3) as router:
            batches = {app: chunks(s[2]) for app, s in app_streams.items()}
            for app, (label, _p, _s) in app_streams.items():
                router.ingest(app, label, batches[app][0], seq=0)
            # Skew the ring hard mid-stream.
            weights = {
                worker: (4.0 if i == 0 else 0.25)
                for i, worker in enumerate(router.ring.workers())
            }
            router.rebalance(weights)
            assert router.ring.describe() == weights
            for app, (label, _p, _s) in app_streams.items():
                for seq, chunk in enumerate(batches[app][1:], start=1):
                    router.ingest(app, label, chunk, seq=seq)
            for app, (label, profile, _s) in app_streams.items():
                version = router.get_plan(app, label)
                assert plans_equivalent(version.plan, offline_plan(app, profile))
            report = router.stop()
            assert report["abandoned_shards"] == []

    def test_rebalance_rejects_unknown_worker(self, app_streams):
        with make_router(workers=2) as router:
            with pytest.raises(FleetError, match="unknown fleet worker"):
                router.rebalance({"w99": 2.0})

    def test_drain_with_inflight_builds_publishes_every_shard(
        self, app_streams
    ):
        """Eager-debounce builds are pending at stop(); none may strand."""
        router = FleetRouter(
            config=FleetConfig(workers=2, seed=1),
            # debounce 0 -> every ingest arms an immediate background
            # build, so stop() lands while builds are in flight.
            service_config=ServiceConfig(
                reservoir_capacity=1 << 20,
                deadline_ms=60_000,
                debounce_s=0.0,
            ),
            sim_config=SIM_CFG,
        )
        router.start()
        for app, (label, _profile, stream) in app_streams.items():
            for seq, chunk in enumerate(chunks(stream)):
                router.ingest(app, label, chunk, seq=seq)
        report = router.stop()
        assert report["abandoned_shards"] == []
        assert report["dirty_shards"] == []
        for app, (label, _profile, _stream) in app_streams.items():
            shard_name = f"{app}/{label}"
            assert report["router"]["published"].get(shard_name, 0) >= 1

    def test_stop_rejects_new_requests(self, app_streams):
        label, _profile, stream = app_streams["wordpress"]
        router = make_router(workers=2)
        router.start()
        router.ingest("wordpress", label, chunks(stream)[0], seq=0)
        router.stop()
        with pytest.raises(FleetError, match="not started"):
            router.ingest("wordpress", label, chunks(stream)[0], seq=0)


# ----------------------------------------------------------------------
class TestSheddingSemantics:
    def test_stalled_worker_sheds_and_shed_batches_are_not_journaled(
        self, app_streams
    ):
        """SIGSTOP the worker: the bounded queue fills, arrivals shed.

        Shed submissions must NOT be journaled (they are the retryable
        kind), and resending them after SIGCONT must fold exactly once
        -- parity is the oracle.
        """
        label, profile, stream = app_streams["wordpress"]
        # Small batches: enough submissions to overflow a depth-2 queue.
        all_chunks = [stream[i : i + 16] for i in range(0, len(stream), 16)]
        assert len(all_chunks) >= 4, "stream too short to overflow the queue"
        with make_router(workers=1, min_workers=1, queue_depth=2) as router:
            handle = next(iter(router._handles.values()))
            os.kill(handle.pid, signal.SIGSTOP)
            pending = []
            sheds = 0
            accepted = 0
            try:
                # The stalled worker drains nothing: the bounded queue
                # fills and an arrival must shed.
                for seq, chunk in enumerate(all_chunks):
                    try:
                        pending.append(
                            router.ingest_async("wordpress", label, chunk, seq=seq)
                        )
                        accepted += 1
                    except ServiceOverload:
                        sheds += 1
                        break
                assert sheds == 1, "stalled worker must shed past queue_depth"
                assert router.journal.count(("wordpress", label)) == accepted
            finally:
                os.kill(handle.pid, signal.SIGCONT)
            # Resume from the shed chunk, retrying in place so per-shard
            # journal order still equals stream order.
            for seq in range(accepted, len(all_chunks)):
                while True:
                    try:
                        pending.append(
                            router.ingest_async(
                                "wordpress", label, all_chunks[seq], seq=seq
                            )
                        )
                        break
                    except ServiceOverload:
                        sheds += 1
                        time.sleep(0.005)
            for future in pending:
                future.result(timeout=60.0)
            assert router.journal.count(("wordpress", label)) == len(all_chunks)
            version = router.get_plan("wordpress", label)
            assert plans_equivalent(version.plan, offline_plan("wordpress", profile))
            snapshot = router.router_snapshot()
            assert sum(
                w["sheds"] for w in snapshot["worker_queues"].values()
            ) >= sheds


# ----------------------------------------------------------------------
class TestElasticity:
    def test_add_and_remove_worker_preserve_parity(self, app_streams):
        with make_router(workers=2, min_workers=1, max_workers=4) as router:
            batches = {app: chunks(s[2]) for app, s in app_streams.items()}
            for app, (label, _p, _s) in app_streams.items():
                router.ingest(app, label, batches[app][0], seq=0)
            grown = router.add_worker()
            assert grown in router.ring
            for app, (label, _p, _s) in app_streams.items():
                for seq, chunk in enumerate(batches[app][1:], start=1):
                    router.ingest(app, label, chunk, seq=seq)
            victim = router.ring.workers()[0]
            router.remove_worker(victim)
            assert victim not in router.ring
            for app, (label, profile, _s) in app_streams.items():
                version = router.get_plan(app, label)
                assert plans_equivalent(version.plan, offline_plan(app, profile))

    def test_pool_bounds_enforced(self, app_streams):
        with make_router(workers=2, min_workers=2, max_workers=2) as router:
            with pytest.raises(FleetError, match="max_workers"):
                router.add_worker()
            with pytest.raises(FleetError, match="min_workers"):
                router.remove_worker(router.ring.workers()[0])

    def test_autoscale_tick_records_decisions(self, app_streams):
        label, _profile, stream = app_streams["wordpress"]
        with make_router(
            workers=2, autoscale=True, min_workers=1, max_workers=4
        ) as router:
            router.ingest("wordpress", label, chunks(stream)[0], seq=0)
            decision = router.autoscale_tick()
            assert decision.tick == 1
            assert decision.action in ("grow", "shrink", "hold")
            record = decision.to_record()
            assert record["schema_version"] == DECISION_SCHEMA_VERSION
            assert record["event"] == "allocation"
            assert record["signals"]["workers"] == 2
            assert router.decisions[-1] is decision

    def test_decisions_reach_telemetry_and_jsonl(self, app_streams, tmp_path):
        """An instrumented tick lands in both sinks without colliding
        with the telemetry event-name field."""
        telemetry_path = str(tmp_path / "telemetry.jsonl")
        decisions_path = str(tmp_path / "decisions.jsonl")
        label, _profile, stream = app_streams["wordpress"]
        router = FleetRouter(
            config=FleetConfig(workers=2, seed=1, autoscale=True),
            service_config=ServiceConfig(
                reservoir_capacity=1 << 20,
                deadline_ms=60_000,
                debounce_s=30.0,
            ),
            sim_config=SIM_CFG,
            telemetry_path=telemetry_path,
            decisions_path=decisions_path,
        )
        router.start()
        try:
            router.ingest("wordpress", label, chunks(stream)[0], seq=0)
            router.autoscale_tick()
        finally:
            router.stop()
        with open(decisions_path, encoding="utf-8") as fh:
            decisions = [json.loads(line) for line in fh if line.strip()]
        assert [d["event"] for d in decisions] == ["allocation", "allocation"]
        assert decisions[0]["tick"] == 1
        assert decisions[-1]["action"] == "drain"
        with open(telemetry_path, encoding="utf-8") as fh:
            events = [json.loads(line) for line in fh if line.strip()]
        allocations = [e for e in events if e.get("event") == "fleet_allocation"]
        assert len(allocations) == 2
        assert allocations[0]["action"] in ("grow", "shrink", "hold")

    def test_autoscale_disabled_always_holds(self, app_streams):
        with make_router(workers=2, autoscale=False) as router:
            decision = router.autoscale_tick()
            assert decision.action == "hold"
            assert decision.reason == "autoscale disabled"


class TestAutoscalerPolicy:
    CFG = FleetConfig(
        workers=2,
        autoscale=True,
        min_workers=1,
        max_workers=4,
        grow_queue_frac=0.75,
        grow_shed_delta=1,
        shrink_queue_frac=0.05,
        shrink_idle_ticks=3,
    )

    def signals(self, **overrides):
        base = {
            "workers": 2,
            "max_queue_frac": 0.2,
            "sheds_delta": 0,
            "build_latency_s": None,
        }
        base.update(overrides)
        return base

    def test_grow_on_sheds(self):
        scaler = Autoscaler(self.CFG)
        action, reason = scaler.decide(self.signals(sheds_delta=3))
        assert action == "grow"
        assert "shed" in reason

    def test_grow_on_queue_pressure(self):
        scaler = Autoscaler(self.CFG)
        action, reason = scaler.decide(self.signals(max_queue_frac=0.9))
        assert action == "grow"
        assert "queue" in reason

    def test_grow_on_build_latency(self):
        scaler = Autoscaler(self.CFG)
        action, reason = scaler.decide(
            self.signals(build_latency_s=self.CFG.grow_build_latency_s + 1)
        )
        assert action == "grow"
        assert "latency" in reason

    def test_hold_at_max(self):
        scaler = Autoscaler(self.CFG)
        action, reason = scaler.decide(
            self.signals(workers=4, sheds_delta=5)
        )
        assert action == "hold"
        assert "max" in reason

    def test_shrink_needs_consecutive_idle_ticks(self):
        scaler = Autoscaler(self.CFG)
        idle = self.signals(max_queue_frac=0.0)
        assert scaler.decide(idle)[0] == "hold"
        assert scaler.decide(idle)[0] == "hold"
        action, reason = scaler.decide(idle)
        assert action == "shrink"
        assert "idle" in reason
        # The streak resets after a shrink.
        assert scaler.decide(idle)[0] == "hold"

    def test_busy_tick_resets_idle_streak(self):
        scaler = Autoscaler(self.CFG)
        idle = self.signals(max_queue_frac=0.0)
        scaler.decide(idle)
        scaler.decide(idle)
        scaler.decide(self.signals(max_queue_frac=0.5))  # busy: reset
        assert scaler.decide(idle)[0] == "hold"
        assert scaler.decide(idle)[0] == "hold"
        assert scaler.decide(idle)[0] == "shrink"

    def test_hold_at_min(self):
        scaler = Autoscaler(self.CFG)
        idle = self.signals(workers=1, max_queue_frac=0.0)
        scaler.decide(idle)
        scaler.decide(idle)
        action, reason = scaler.decide(idle)
        assert action == "hold"
        assert "min" in reason


# ----------------------------------------------------------------------
class TestFleetConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"workers": 0}, "workers must be positive"),
            ({"replicas": 0}, "replicas must be >= 1"),
            ({"min_workers": 0}, "min_workers"),
            ({"min_workers": 3, "max_workers": 2}, "max_workers"),
            ({"workers": 9, "max_workers": 8}, "must lie in"),
            ({"queue_depth": 0}, "queue_depth"),
            ({"worker_deadline_ms": 0}, "worker_deadline_ms"),
            ({"request_timeout_s": 0}, "request_timeout_s"),
            ({"start_method": "threads"}, "start_method"),
            ({"grow_queue_frac": 1.5}, "grow_queue_frac"),
            ({"shrink_queue_frac": 0.9}, "shrink_queue_frac"),
            ({"shrink_idle_ticks": 0}, "shrink_idle_ticks"),
        ],
    )
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            FleetConfig(**kwargs)

    def test_allocation_decision_is_json_serializable(self):
        decision = AllocationDecision(
            tick=3,
            action="grow",
            reason="queue 80% full",
            workers={"w0": 1.0},
            signals={"workers": 1},
        )
        round_tripped = json.loads(json.dumps(decision.to_record()))
        assert round_tripped["tick"] == 3
        assert round_tripped["action"] == "grow"


# ----------------------------------------------------------------------
class TestEnvInheritance:
    def test_spawned_workers_read_service_knobs_from_env(
        self, monkeypatch, app_streams
    ):
        """service_config=None + spawn: knobs travel via the environment."""
        monkeypatch.setenv("REPRO_SERVICE_RESERVOIR", "777")
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_DEPTH", "33")
        label, _profile, stream = app_streams["wordpress"]
        router = FleetRouter(
            config=FleetConfig(workers=1, min_workers=1, start_method="spawn"),
            service_config=None,  # worker builds its own from the env
            sim_config=SIM_CFG,
        )
        router.start()
        try:
            router.ingest("wordpress", label, chunks(stream)[0], seq=0)
            stats = router.stats()
            (worker_stats,) = stats["workers"].values()
            assert worker_stats["config"]["reservoir_capacity"] == 777
            assert worker_stats["config"]["queue_depth"] == 33
            assert worker_stats["pid"] != os.getpid()
        finally:
            router.stop()


# ----------------------------------------------------------------------
class TestFleetChaosParityAllApps:
    def test_kill_rebalance_autoscale_drain_all_apps(self, tmp_path):
        """The acceptance run: all 9 apps streamed through a fleet that
        suffers >=1 worker crash (journal replay), >=1 rebalance under
        skew, autoscaler ticks, and a full drain -- site-for-site
        parity for every app, plus the JSONL artifacts."""
        journal_path = str(tmp_path / "journal.jsonl")
        decisions_path = str(tmp_path / "decisions.jsonl")
        cfg = ShardedFleetConfig(
            apps=app_names(),
            trace_instructions=12_000,
            workers=3,
            replicas=2,
            batch_size=BATCH,
            kill_after=4,
            rebalance_after=8,
            autoscale=True,
            autoscale_every=6,
            seed=7,
        )
        report = run_fleet_sharded(
            cfg, journal_path=journal_path, decisions_path=decisions_path
        )
        assert len(report.apps) == len(app_names())
        for app, result in report.apps.items():
            assert result.parity is True, f"{app} diverged"
        assert report.parity_ok is True
        assert report.drained_clean
        assert len(report.crashed_workers) >= 1
        counters = report.router_counters
        assert int(counters.get("fleet.rebalances", 0)) >= 1
        assert int(counters.get("fleet.replayed_batches", 0)) >= 1
        # The journal mirror replays to the same accounting.
        mirrored = read_journal(journal_path)
        assert mirrored.stats() == report.fleet["router"]["journal"]
        # The allocation-decision artifact is valid JSONL with schema.
        with open(decisions_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert records, "autoscaler must have recorded decisions"
        for record in records:
            assert record["schema_version"] == DECISION_SCHEMA_VERSION
            assert record["action"] in ("grow", "shrink", "hold", "rebalance", "drain")
