"""Return address stack behaviour."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_wraps_and_corrupts_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was lost

    def test_depth_saturates(self):
        ras = ReturnAddressStack(2)
        for i in range(5):
            ras.push(i)
        assert ras.depth == 2

    def test_predict_and_check_correct(self):
        ras = ReturnAddressStack(4)
        ras.push(0x42)
        assert ras.predict_and_check(0x42)
        assert ras.accuracy() == 1.0

    def test_predict_and_check_wrong(self):
        ras = ReturnAddressStack(4)
        ras.push(0x42)
        assert not ras.predict_and_check(0x43)
        assert ras.accuracy() == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_deep_call_chain_within_capacity(self):
        ras = ReturnAddressStack(32)
        addrs = list(range(100, 132))
        for a in addrs:
            ras.push(a)
        for a in reversed(addrs):
            assert ras.predict_and_check(a)
        assert ras.accuracy() == 1.0
