"""Drift engine suite: determinism, epochs, and the canary E2E proof.

Three contracts from DESIGN §16 are pinned here:

1. **Determinism** — the same ``(stream, scenario, seed)`` produces
   identical phase schedules, changelogs, derived views, canary
   verdicts, and rollback lineage; and none of it depends on the
   simulator run-loop mode (profiling pins ``serial`` at its call
   site, so a global ``REPRO_SIM_MODE=fast`` must change nothing).
2. **Profile epochs** — a rolling deploy resets the shard's sample
   state while plan lineage survives; the reset is journaled at its
   exact stream position and replays correctly whether or not the
   latest snapshot already reflects it.
3. **The canary proof** — an injected rolling-deploy regression is
   detected from post-publish miss feedback and auto-rolled-back;
   the rollback survives a kill-and-restore with identical lineage;
   a no-regression scenario promotes; and a service killed mid-way
   through the feedback stream converges to the same verdict once
   the client replays the (unjournaled) feedback from the start.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SimConfig
from repro.drift.canary import CanarySettings
from repro.drift.feedback import (
    SCORE_COVERED,
    SCORE_HIT,
    SCORE_STALE,
    SCORE_UNCOVERED,
    EffectivenessTracker,
    RegressionDetector,
    assign_arm,
    score_sample,
)
from repro.drift.scenarios import (
    SCENARIO_KINDS,
    ensure_fresh,
    feedback_view,
    ingest_view,
    make_schedule,
    stale_sites,
)
from repro.errors import DriftError, PlanStaleError
from repro.profiling.profile import MissSample
from repro.service.bench import _abandon_service, collect_sample_stream
from repro.service.build import plan_sites
from repro.service.ingest import ShardState
from repro.service.server import (
    PlanService,
    ServiceConfig,
    default_workload_resolver,
)
from repro.trace.walker import generate_trace

SIM_CFG = SimConfig()
APP = "wordpress"
BATCH = 64


@pytest.fixture(scope="module")
def wp_stream():
    """One profiled miss-sample stream: (trace label, stream)."""
    resolver = default_workload_resolver()
    workload = resolver(APP)
    trace = generate_trace(
        workload, workload.spec.make_input(0), max_instructions=8_000
    )
    _profile, stream = collect_sample_stream(workload, trace, SIM_CFG)
    # Both canary arms must close 2 windows of 16 before a verdict (so
    # >= 64 scored samples), with margin for the split's jitter.
    assert len(stream) >= 160, "stream too short to close canary windows"
    return trace.label, stream


# ----------------------------------------------------------------------
# Episode driver (mirrors the drift-bench flow, compact)
# ----------------------------------------------------------------------

def _settings(seed: int = 0) -> CanarySettings:
    return CanarySettings(
        enabled=True, fraction=0.5, window=16, windows=2,
        threshold=0.05, seed=seed,
    )


def _drift_service(state_dir: str, seed: int = 0) -> PlanService:
    return PlanService(
        workload_for=default_workload_resolver(),
        config=ServiceConfig(
            # Only explicit get_plan requests build: the lineage is
            # exactly baseline-then-candidate.
            debounce_s=60.0,
            deadline_ms=60_000,  # builds under parallel-suite load
            journal_path=f"{state_dir}/journal.jsonl",
            snapshot_dir=f"{state_dir}/snapshots",
            snapshot_every=1_000_000,  # snapshots ride on publishes/verdicts
        ),
        sim_config=SIM_CFG,
        check_plans=True,
        canary=_settings(seed),
    )


async def _run_episode(
    state_dir: str,
    label: str,
    stream,
    scenario: str,
    seed: int = 0,
    kill_mid_feedback: bool = False,
):
    """One drift episode; returns every lineage-relevant observable."""
    schedule = make_schedule(stream, scenario, seed, phases=2)
    key = (APP, label)
    full = ingest_view(stream, schedule)
    pre = ingest_view(stream[: schedule.phases[0].stop], schedule)
    post = full[len(pre):]
    feedback = feedback_view(stream, schedule, deployed_fraction=0.25)
    relocated = set(schedule.relocated_pcs().values())

    service = _drift_service(state_dir, seed)
    await service.start()
    for seq, start in enumerate(range(0, len(pre), BATCH)):
        await service.ingest(APP, label, pre[start : start + BATCH], seq=seq)
    baseline = await service.get_plan(APP, label)
    epoch = 0
    if schedule.relocations():
        epoch = await service.new_epoch(APP, label)
    seq0 = (len(pre) + BATCH - 1) // BATCH
    for seq, start in enumerate(range(0, len(post), BATCH)):
        await service.ingest(
            APP, label, post[start : start + BATCH], seq=seq0 + seq
        )
    await service.get_plan(APP, label)  # stages the candidate

    # Feedback flows in batches of 32: a verdict needs >= 64 scored
    # samples (2 windows of 16 per arm), so killing before batch 1 is
    # always mid-canary — progress exists, the verdict does not.
    fb = 32
    batches = [feedback[s : s + fb] for s in range(0, len(feedback), fb)]
    kill_at = 1 if kill_mid_feedback else None
    verdict = None
    i = 0
    while i < len(batches):
        if kill_at is not None and i == kill_at:
            # Crash mid-canary.  Feedback is not journaled (it never
            # reaches the plan builder), so the client's replay contract
            # is from the start; the restored canary counter is 0 and
            # the deterministic split reproduces the exact same arms.
            await _abandon_service(service)
            service = _drift_service(state_dir, seed)
            service.restore()
            await service.start()
            kill_at = None
            i = 0
            continue
        reply = await service.feedback(
            APP, label, batches[i], stale_pcs=relocated, seq=i
        )
        if reply["verdicts"]:
            verdict = reply["verdicts"][0]
            break
        i += 1

    state = service.canary.states.get(key)
    active = service.canary.active(key)
    live = {
        "schedule": schedule,
        "epoch": epoch,
        "baseline_version": baseline.version,
        "verdict": None if verdict is None else verdict["decision"],
        "active_version": active.version if active is not None else 0,
        "active_sites": tuple(sorted(plan_sites(active.plan)))
        if active is not None
        else (),
        "observed": state.observed if state is not None else 0,
        "history": tuple(state.history) if state is not None else (),
    }

    # Kill after the verdict and restore: the rollback (or promotion)
    # must survive with identical lineage and active plan.
    await _abandon_service(service)
    revived = _drift_service(state_dir, seed)
    revived.restore()
    await revived.start()
    restored_state = revived.canary.states.get(key)
    restored_active = revived.canary.active(key)
    live["restored_active_version"] = (
        restored_active.version if restored_active is not None else 0
    )
    live["restored_active_sites"] = (
        tuple(sorted(plan_sites(restored_active.plan)))
        if restored_active is not None
        else ()
    )
    live["restored_history"] = (
        tuple(restored_state.history) if restored_state is not None else ()
    )
    await revived.stop()
    return live


def _episode(tmp_path, label, stream, scenario, **kw):
    return asyncio.run(
        _run_episode(str(tmp_path), label, stream, scenario, **kw)
    )


def _lineage_view(ep):
    """The fields two equivalent episodes must agree on exactly."""
    return {
        k: ep[k]
        for k in (
            "schedule", "epoch", "baseline_version", "verdict",
            "active_version", "active_sites", "observed", "history",
            "restored_active_version", "restored_active_sites",
            "restored_history",
        )
    }


# ----------------------------------------------------------------------
# Layer 1: schedules and views
# ----------------------------------------------------------------------

class TestScheduleDeterminism:
    @pytest.mark.parametrize("scenario", SCENARIO_KINDS)
    def test_same_inputs_same_schedule(self, wp_stream, scenario):
        _label, stream = wp_stream
        a = make_schedule(stream, scenario, seed=7, phases=3)
        b = make_schedule(stream, scenario, seed=7, phases=3)
        assert a == b
        assert ingest_view(stream, a) == ingest_view(stream, b)
        assert feedback_view(stream, a) == feedback_view(stream, b)

    def test_seed_changes_the_changelog(self, wp_stream):
        _label, stream = wp_stream
        a = make_schedule(stream, "deploy", seed=0)
        b = make_schedule(stream, "deploy", seed=1)
        assert a.changelog != b.changelog

    def test_phases_partition_the_stream(self, wp_stream):
        _label, stream = wp_stream
        schedule = make_schedule(stream, "diurnal", seed=0, phases=4)
        assert schedule.phases[0].start == 0
        assert schedule.phases[-1].stop == len(stream)
        for prev, cur in zip(schedule.phases, schedule.phases[1:]):
            assert prev.stop == cur.start

    def test_steady_has_empty_changelog(self, wp_stream):
        _label, stream = wp_stream
        schedule = make_schedule(stream, "steady", seed=0)
        assert schedule.changelog == ()
        assert ingest_view(stream, schedule) == tuple(stream)

    def test_unknown_scenario_rejected(self, wp_stream):
        _label, stream = wp_stream
        with pytest.raises(DriftError):
            make_schedule(stream, "meteor", seed=0)


class TestViews:
    def test_deploy_drops_relocated_from_ingest(self, wp_stream):
        _label, stream = wp_stream
        schedule = make_schedule(stream, "deploy", seed=0)
        moved = schedule.relocations()
        assert moved, "deploy schedule relocated nothing"
        boundary = schedule.phases[0].stop
        view = ingest_view(stream, schedule)
        # Deploy applies no weights, so the only change is the drop of
        # relocated blocks after the boundary: their occurrence count
        # in the view equals their phase-0 count exactly.
        in_phase0 = sum(1 for s in stream[:boundary] if s.miss_block in moved)
        in_phase1 = sum(1 for s in stream[boundary:] if s.miss_block in moved)
        in_view = sum(1 for s in view if s.miss_block in moved)
        assert in_phase1 > 0, "relocation touched no post-boundary samples"
        assert in_view == in_phase0

    def test_feedback_view_runs_relocated_code(self, wp_stream):
        _label, stream = wp_stream
        schedule = make_schedule(stream, "deploy", seed=0)
        new_pcs = set(schedule.relocated_pcs().values())
        fed = feedback_view(stream, schedule, deployed_fraction=1.0)
        assert any(s.miss_pc in new_pcs for s in fed)
        none_deployed = feedback_view(stream, schedule, deployed_fraction=0.0)
        assert not any(s.miss_pc in new_pcs for s in none_deployed)

    def test_typed_staleness_gate(self, wp_stream, tmp_path):
        """An old-layout plan dangles after a relocation: the gate must
        raise the typed error naming the exact ground-truth sites."""
        label, stream = wp_stream
        schedule = make_schedule(stream, "deploy", seed=0)

        async def build_baseline():
            service = _drift_service(str(tmp_path))
            await service.start()
            pre = ingest_view(stream[: schedule.phases[0].stop], schedule)
            await service.ingest(APP, label, pre, seq=0)
            version = await service.get_plan(APP, label)
            await service.stop()
            return version

        baseline = asyncio.run(build_baseline())
        dangling = stale_sites(baseline.plan, schedule)
        assert dangling, "relocation invalidated no plan site"
        with pytest.raises(PlanStaleError) as err:
            ensure_fresh((APP, label), baseline.plan, schedule)
        assert tuple(err.value.stale_sites) == dangling
        # Steady control: nothing dangles, the gate stays silent.
        steady = make_schedule(stream, "steady", seed=0)
        assert stale_sites(baseline.plan, steady) == ()
        ensure_fresh((APP, label), baseline.plan, steady)


# ----------------------------------------------------------------------
# Layer 2: feedback scoring
# ----------------------------------------------------------------------

class TestFeedbackScoring:
    INDEX = {0x100: {7, 9}}

    def test_score_order(self):
        covered = MissSample(miss_pc=0x100, miss_block=4, window=((3, 0),))
        hit = MissSample(miss_pc=0x100, miss_block=4, window=((7, 0),))
        unknown = MissSample(miss_pc=0x200, miss_block=4, window=((7, 0),))
        assert score_sample(self.INDEX, covered) == SCORE_COVERED
        assert score_sample(self.INDEX, hit) == SCORE_HIT
        assert score_sample(self.INDEX, unknown) == SCORE_UNCOVERED
        # Typed staleness wins over everything, plan or no plan.
        assert score_sample(self.INDEX, hit, stale_pcs={0x100}) == SCORE_STALE

    def test_tracker_windows_and_roundtrip(self):
        tracker = EffectivenessTracker(window=4)
        for score in (SCORE_HIT, SCORE_COVERED, SCORE_UNCOVERED, SCORE_STALE):
            closed = tracker.observe(score)
        assert closed == 0.5  # 2 of 4 covered
        assert tracker.scores == [0.5]
        assert tracker.hit_scores == [0.25]
        assert tracker.stale_scores == [0.25]
        tracker.observe(SCORE_HIT)  # leaves an open window behind
        clone = EffectivenessTracker.from_dict(tracker.to_dict())
        assert clone.to_dict() == tracker.to_dict()
        # The clone continues exactly where the original would.
        for t in (tracker, clone):
            for _ in range(3):
                t.observe(SCORE_COVERED)
        assert clone.scores == tracker.scores == [0.5, 1.0]

    def test_detector_threshold(self):
        detector = RegressionDetector(threshold=0.1, windows=2, seed=0)
        base, cand = EffectivenessTracker(1), EffectivenessTracker(1)
        with pytest.raises(DriftError):
            detector.regressed(base, cand)
        for _ in range(2):
            base.observe(SCORE_COVERED)   # 1.0, 1.0
            cand.observe(SCORE_UNCOVERED)  # 0.0, 0.0
        assert detector.ready(base, cand)
        assert detector.regressed(base, cand)
        close = EffectivenessTracker(1)
        for _ in range(2):
            close.observe(SCORE_COVERED)
        assert not detector.regressed(base, close)

    def test_arm_assignment_deterministic_split(self):
        key = (APP, "i0")
        arms = [assign_arm(0, key, i, 0.5) for i in range(400)]
        assert arms == [assign_arm(0, key, i, 0.5) for i in range(400)]
        candidate_share = arms.count("candidate") / len(arms)
        assert 0.4 < candidate_share < 0.6
        with pytest.raises(DriftError):
            assign_arm(0, key, 0, 1.0)


# ----------------------------------------------------------------------
# Profile epochs
# ----------------------------------------------------------------------

class TestProfileEpochs:
    def test_reset_epoch_restarts_fold_deterministically(self, wp_stream):
        label, stream = wp_stream
        from repro.service.ingest import SampleBatch

        batch = SampleBatch(
            app_name=APP, input_label=label, samples=tuple(stream[:100])
        )
        fresh = ShardState((APP, label), reservoir_capacity=64, seed=3)
        fresh.absorb(batch)
        reset = ShardState((APP, label), reservoir_capacity=64, seed=3)
        reset.absorb(batch)
        epoch = reset.reset_epoch()
        assert epoch == reset.epoch == 1
        assert len(reset.reservoir) == 0
        assert reset.counters.batches == 0
        # Monotonic generation: the reset itself dirties the shard.
        assert reset.generation == 2
        # Same seeds: folding the same batch post-reset retains exactly
        # what a fresh shard would.
        reset.absorb(batch)
        assert reset.reservoir.items == fresh.reservoir.items

    def _epoch_run(self, state_dir, label, batches, snapshots: bool):
        """Ingest 2 batches, epoch, 2 batches; abandon; return service."""
        config = ServiceConfig(
            debounce_s=60.0,
            deadline_ms=60_000,  # builds under parallel-suite load
            journal_path=f"{state_dir}/journal.jsonl",
            snapshot_dir=f"{state_dir}/snapshots" if snapshots else None,
            snapshot_every=1_000_000,
        )

        def make():
            return PlanService(
                workload_for=default_workload_resolver(),
                config=config,
                sim_config=SIM_CFG,
                check_plans=True,
            )

        async def crashy():
            service = make()
            await service.start()
            for seq in (0, 1):
                await service.ingest(APP, label, batches[seq], seq=seq)
            await service.new_epoch(APP, label)
            for seq in (2, 3):
                await service.ingest(APP, label, batches[seq], seq=seq)
            await _abandon_service(service)

        async def revive():
            service = make()
            report = service.restore()
            await service.start()
            plan = await service.get_plan(APP, label)
            shard = service.buffer.get((APP, label))
            state = (
                shard.epoch,
                shard.counters.batches,
                tuple(shard.reservoir.items),
            )
            await service.stop()
            return report, plan, state

        asyncio.run(crashy())
        return asyncio.run(revive())

    def _uninterrupted_reference(self, state_dir, label, batches):
        async def run():
            service = PlanService(
                workload_for=default_workload_resolver(),
                config=ServiceConfig(debounce_s=60.0, deadline_ms=60_000),
                sim_config=SIM_CFG,
                check_plans=True,
            )
            await service.start()
            for seq in (0, 1):
                await service.ingest(APP, label, batches[seq], seq=seq)
            await service.new_epoch(APP, label)
            for seq in (2, 3):
                await service.ingest(APP, label, batches[seq], seq=seq)
            plan = await service.get_plan(APP, label)
            shard = service.buffer.get((APP, label))
            state = (
                shard.epoch,
                shard.counters.batches,
                tuple(shard.reservoir.items),
            )
            await service.stop()
            return plan, state

        return asyncio.run(run())

    @pytest.fixture()
    def epoch_batches(self, wp_stream):
        label, stream = wp_stream
        quarter = len(stream) // 4
        return label, [
            stream[i * quarter : (i + 1) * quarter] for i in range(4)
        ]

    def test_epoch_replays_at_position_without_snapshot(
        self, epoch_batches, tmp_path
    ):
        """Journal-only recovery: the reset replays between batch 2 and
        batch 3, exactly where the live run issued it."""
        label, batches = epoch_batches
        report, plan, state = self._epoch_run(
            str(tmp_path / "a"), label, batches, snapshots=False
        )
        assert report["epochs_replayed"] == 1
        assert report["batches_replayed"] == 4
        ref_plan, ref_state = self._uninterrupted_reference(
            str(tmp_path / "ref"), label, batches
        )
        assert state == ref_state
        assert plan_sites(plan.plan) == plan_sites(ref_plan.plan)

    def test_epoch_snapshot_already_reflects_reset(
        self, epoch_batches, tmp_path
    ):
        """Snapshot + journal recovery: the epoch-reset snapshot means
        replay must NOT re-apply the reset (the epoch number in the
        journal event disambiguates), and the suffix folds on top."""
        label, batches = epoch_batches
        report, plan, state = self._epoch_run(
            str(tmp_path / "b"), label, batches, snapshots=True
        )
        assert report["snapshot_loaded"]
        assert report["epochs_replayed"] == 0
        # Only the post-snapshot suffix (batches 2 and 3) replays.
        assert report["batches_replayed"] == 2
        ref_plan, ref_state = self._uninterrupted_reference(
            str(tmp_path / "ref"), label, batches
        )
        assert state == ref_state
        assert plan_sites(plan.plan) == plan_sites(ref_plan.plan)

    def test_epoch_unknown_shard_rejected(self, tmp_path):
        async def run():
            service = PlanService(
                workload_for=default_workload_resolver(),
                config=ServiceConfig(),
                sim_config=SIM_CFG,
            )
            await service.start()
            from repro.errors import ServiceError

            with pytest.raises(ServiceError):
                await service.new_epoch(APP, "never-ingested")
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Layer 3: the canary E2E proof
# ----------------------------------------------------------------------

class TestCanaryEndToEnd:
    @pytest.fixture(scope="class")
    def deploy_episode(self, wp_stream, tmp_path_factory):
        label, stream = wp_stream
        return _episode(
            tmp_path_factory.mktemp("deploy"), label, stream, "deploy"
        )

    def test_deploy_regression_rolls_back(self, deploy_episode):
        ep = deploy_episode
        # The deploy boundary started a fresh profile epoch, so the
        # candidate was built without the relocated sites...
        assert ep["epoch"] == 1
        # ...the feedback differential detected the regression...
        assert ep["verdict"] == "rolled_back"
        # ...and the baseline keeps serving: active == v1, lineage
        # records the full staged-then-rolled-back story.
        assert ep["baseline_version"] == 1
        assert ep["active_version"] == 1
        assert ep["history"] == (
            ("activated", 1), ("staged", 2), ("rolled_back", 2),
        )

    def test_rollback_survives_kill_and_restore(self, deploy_episode):
        ep = deploy_episode
        assert ep["restored_active_version"] == ep["active_version"]
        assert ep["restored_active_sites"] == ep["active_sites"]
        assert ep["restored_history"] == ep["history"]

    def test_steady_scenario_promotes(self, wp_stream, tmp_path):
        label, stream = wp_stream
        ep = _episode(tmp_path, label, stream, "steady")
        assert ep["epoch"] == 0  # no relocation, no epoch reset
        assert ep["verdict"] == "promoted"
        assert ep["active_version"] == 2
        assert ep["history"] == (
            ("activated", 1), ("staged", 2), ("promoted", 2),
        )
        assert ep["restored_history"] == ep["history"]
        assert ep["restored_active_version"] == 2

    def test_mid_stream_restart_converges(
        self, wp_stream, tmp_path, deploy_episode
    ):
        """Kill the service mid-canary, restore, replay feedback from
        the start: verdict, observation count, and lineage all match
        the uninterrupted episode exactly."""
        label, stream = wp_stream
        killed = _episode(
            tmp_path, label, stream, "deploy", kill_mid_feedback=True
        )
        assert _lineage_view(killed) == _lineage_view(deploy_episode)

    def test_sim_mode_does_not_touch_drift(
        self, wp_stream, tmp_path, monkeypatch, deploy_episode
    ):
        """A global REPRO_SIM_MODE=fast (the new sweep default) must not
        reach the drift pipeline: profiling pins serial at its call
        site and everything downstream is simulator-free."""
        label, stream = wp_stream
        monkeypatch.setenv("REPRO_SIM_MODE", "fast")
        resolver = default_workload_resolver()
        workload = resolver(APP)
        trace = generate_trace(
            workload, workload.spec.make_input(0), max_instructions=8_000
        )
        _profile, fast_stream = collect_sample_stream(workload, trace, SIM_CFG)
        assert fast_stream == stream
        fast_ep = _episode(tmp_path, label, fast_stream, "deploy")
        assert _lineage_view(fast_ep) == _lineage_view(deploy_episode)
