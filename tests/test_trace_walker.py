"""Trace walker: consistency invariants, determinism, inputs."""

import pytest

from repro.errors import TraceError
from repro.isa.branches import BranchKind
from repro.trace.events import Trace, TraceStats
from repro.trace.walker import generate_trace
from repro.workloads.cfg import build_workload
from tests.conftest import make_tiny_spec


class TestTraceContainer:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            Trace([1, 2], [0], TraceStats())

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace([], [], TraceStats())

    def test_iteration(self):
        tr = Trace([1, 2], [0, 1], TraceStats())
        assert list(tr) == [(1, 0), (2, 1)]

    def test_slice(self):
        tr = Trace([1, 2, 3, 4], [0, 1, 0, 1], TraceStats(), label="x")
        sub = tr.slice(1, 3)
        assert sub.blocks == [2, 3]
        assert "x[1:3]" in sub.label


class TestWalkerInvariants:
    def test_instruction_budget_respected(self, tiny_workload, tiny_trace):
        budget = 60_000
        # Walker stops as soon as the budget is crossed.
        assert budget <= tiny_trace.stats.instructions < budget + 200

    def test_stats_consistency(self, tiny_workload, tiny_trace):
        s = tiny_trace.stats
        assert s.fetch_units == len(tiny_trace)
        assert s.taken_branches == sum(tiny_trace.takens)
        assert s.dynamic_branches == sum(s.branches_by_kind.values())
        assert s.unique_blocks == len(set(tiny_trace.blocks))

    def test_control_flow_consistency(self, tiny_workload, tiny_trace):
        """Successor of each unit obeys the block's terminator."""
        wl = tiny_workload
        blocks, takens = tiny_trace.blocks, tiny_trace.takens
        checked = 0
        for i in range(len(blocks) - 1):
            blk, taken, nxt = blocks[i], takens[i], blocks[i + 1]
            kind = wl.branch_kind[blk]
            if kind is None:
                assert nxt == blk + 1
                assert taken == 0
            elif kind is BranchKind.COND_DIRECT:
                if taken:
                    assert nxt == wl.target_block[blk]
                else:
                    assert nxt == blk + 1
            elif kind is BranchKind.UNCOND_DIRECT:
                assert taken == 1
                assert nxt == wl.target_block[blk]
            elif kind in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT,
                          BranchKind.JUMP_INDIRECT):
                assert taken == 1
            checked += 1
        assert checked > 1000

    def test_call_return_matching(self, tiny_workload, tiny_trace):
        """Returns go back to the caller's fallthrough block."""
        wl = tiny_workload
        blocks, takens = tiny_trace.blocks, tiny_trace.takens
        stack = []
        root_call = wl.functions[wl.root_function].first_block
        for i in range(len(blocks) - 1):
            blk = blocks[i]
            kind = wl.branch_kind[blk]
            if kind in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT):
                stack.append(blk + 1)
            elif kind is BranchKind.RETURN:
                if stack:
                    expected = stack.pop()
                    assert blocks[i + 1] == expected

    def test_branch_mix_close_to_spec(self, tiny_trace):
        s = tiny_trace.stats
        cond = s.branch_fraction(BranchKind.COND_DIRECT)
        assert 0.3 < cond < 0.85  # conditionals dominate


class TestWalkerDeterminism:
    def test_same_input_same_trace(self, tiny_workload):
        inp = tiny_workload.spec.make_input(0)
        a = generate_trace(tiny_workload, inp, max_instructions=20_000)
        b = generate_trace(tiny_workload, inp, max_instructions=20_000)
        assert a.blocks == b.blocks
        assert a.takens == b.takens

    def test_different_inputs_differ(self, tiny_workload):
        a = generate_trace(
            tiny_workload, tiny_workload.spec.make_input(0), max_instructions=20_000
        )
        b = generate_trace(
            tiny_workload, tiny_workload.spec.make_input(1), max_instructions=20_000
        )
        assert a.blocks != b.blocks

    def test_max_fetch_units_cap(self, tiny_workload):
        tr = generate_trace(
            tiny_workload,
            tiny_workload.spec.make_input(0),
            max_instructions=10**9,
            max_fetch_units=500,
        )
        assert len(tr) == 500

    def test_bad_budget_rejected(self, tiny_workload):
        with pytest.raises(TraceError):
            generate_trace(tiny_workload, None, max_instructions=0)


class TestSweepMode:
    def test_sweep_cycles_handlers(self):
        spec = make_tiny_spec(
            name="sweepy", dispatch_pattern="sweep", sweep_skip_prob=0.0
        )
        wl = build_workload(spec, seed=1)
        tr = generate_trace(wl, spec.make_input(0), max_instructions=60_000)
        # Under a no-skip sweep, handler entry blocks appear in rotation.
        entries = {wl.functions[h].first_block: h for h in wl.handler_indices}
        seen = [entries[b] for b in tr.blocks if b in entries]
        # All handlers get visited within one lap's worth of draws.
        assert set(seen[: len(entries) + 1]) >= set(list(entries.values())[:-1])

    def test_degenerate_skip_prob_raises_instead_of_hanging(self):
        # AppSpec validation normally rejects sweep_skip_prob >= 1.0,
        # but the walker must refuse a hand-built spec too — its skip
        # loop only terminates while a draw can fail.
        spec = make_tiny_spec(
            name="sweepy", dispatch_pattern="sweep", sweep_skip_prob=0.0
        )
        wl = build_workload(spec, seed=1)
        object.__setattr__(wl.spec, "sweep_skip_prob", 1.0)
        with pytest.raises(TraceError, match="sweep_skip_prob"):
            generate_trace(wl, spec.make_input(0), max_instructions=10_000)

    def test_structured_paths_recur(self, tiny_workload):
        """The same input executes the same unique block set."""
        inp = tiny_workload.spec.make_input(0)
        a = generate_trace(tiny_workload, inp, max_instructions=30_000)
        b = generate_trace(tiny_workload, inp, max_instructions=30_000)
        assert set(a.blocks) == set(b.blocks)
