"""Asyncio plan server: serving discipline + incremental builds.

pytest-asyncio is not available in this environment, so every test
drives its own event loop with ``asyncio.run`` from a synchronous
test function.
"""

import asyncio

import pytest

from repro.config import SimConfig
from repro.core.plan import BRPREFETCH_BYTES, OP_PREFETCH, InjectionOp
from repro.core.twig import build_plan
from repro.errors import (
    DeadlineExceeded,
    PlanError,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
    TransientBuildError,
)
from repro.service.bench import collect_sample_stream
from repro.service.build import diff_plans, plans_equivalent
from repro.service.server import PlanService, ServiceConfig

CFG = SimConfig().with_btb(entries=512)
APP = "tinyapp"


@pytest.fixture(scope="module")
def stream_artifacts(tiny_workload, tiny_trace):
    profile, stream = collect_sample_stream(tiny_workload, tiny_trace, CFG)
    assert stream, "tiny trace must produce BTB miss samples"
    return profile, stream


def make_service(tiny_workload, **overrides) -> PlanService:
    defaults = dict(
        queue_depth=64,
        deadline_ms=30_000,
        reservoir_capacity=1 << 20,
        workers=2,
        debounce_s=0.01,
    )
    defaults.update(overrides)
    return PlanService(
        workload_for=lambda app: tiny_workload,
        config=ServiceConfig(**defaults),
        sim_config=CFG,
    )


def batches(stream, size=64):
    return [stream[i : i + size] for i in range(0, len(stream), size)]


class TestServeFlow:
    def test_ingest_then_get_plan_matches_offline(
        self, tiny_workload, stream_artifacts
    ):
        profile, stream = stream_artifacts

        async def scenario():
            async with make_service(tiny_workload) as service:
                for seq, chunk in enumerate(batches(stream)):
                    ack = await service.ingest(APP, profile.input_label, chunk, seq=seq)
                    assert ack.received == len(chunk)
                    assert ack.admitted == len(chunk)
                return await service.get_plan(APP, profile.input_label)

        version = asyncio.run(scenario())
        offline = build_plan(tiny_workload, profile, CFG)
        assert plans_equivalent(version.plan, offline)
        assert version.checked
        assert version.samples == len(stream)

    def test_plan_for_unknown_shard_fails(self, tiny_workload):
        async def scenario():
            async with make_service(tiny_workload) as service:
                with pytest.raises(ServiceError, match="no samples"):
                    await service.get_plan(APP, "nope")

        asyncio.run(scenario())

    def test_request_before_start_fails(self, tiny_workload):
        service = make_service(tiny_workload)

        async def scenario():
            with pytest.raises(ServiceError, match="not started"):
                await service.stats()

        asyncio.run(scenario())

    def test_request_while_draining_is_refused(self, tiny_workload):
        async def scenario():
            service = make_service(tiny_workload)
            await service.start()
            service._closed = True  # what stop() sets before draining
            with pytest.raises(ServiceClosed):
                await service.stats()
            service._closed = False
            await service.stop()

        asyncio.run(scenario())


class TestOverload:
    def test_queue_full_sheds(self, tiny_workload):
        async def scenario():
            service = make_service(
                tiny_workload,
                queue_depth=2,
                workers=1,
                synthetic_delay_s=0.1,
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.stats(deadline_ms=5_000))
                for _ in range(10)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            stats = await service.stop()
            return results, stats, service.max_queue_depth

        results, stats, max_depth = asyncio.run(scenario())
        sheds = [r for r in results if isinstance(r, ServiceOverload)]
        served = [r for r in results if isinstance(r, dict)]
        assert sheds, "an over-capacity burst must shed"
        assert served, "requests that fit the queue must still be served"
        assert max_depth <= 2
        assert stats["counters"]["service.shed"] == len(sheds)

    def test_deadline_expiry(self, tiny_workload):
        async def scenario():
            service = make_service(
                tiny_workload, workers=1, synthetic_delay_s=0.2
            )
            await service.start()
            with pytest.raises(DeadlineExceeded):
                await service.stats(deadline_ms=10)
            stats = await service.stop()
            return stats

        stats = asyncio.run(scenario())
        assert stats["counters"]["service.deadline_expired"] == 1

    def test_expired_request_is_skipped_not_processed(self, tiny_workload):
        async def scenario():
            service = make_service(
                tiny_workload,
                queue_depth=8,
                workers=1,
                synthetic_delay_s=0.15,
            )
            await service.start()
            slow = asyncio.ensure_future(service.stats(deadline_ms=5_000))
            await asyncio.sleep(0)  # let it enter the queue
            doomed = asyncio.ensure_future(service.stats(deadline_ms=10))
            results = await asyncio.gather(slow, doomed, return_exceptions=True)
            stats = await service.stop()
            return results, stats

        (slow_res, doomed_res), stats = asyncio.run(scenario())
        assert isinstance(slow_res, dict)
        assert isinstance(doomed_res, DeadlineExceeded)
        assert stats["counters"]["service.expired_in_queue"] == 1


class TestDrain:
    def test_stop_publishes_dirty_shards(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts

        async def scenario():
            # Huge debounce: no background build can run before stop().
            service = make_service(tiny_workload, debounce_s=60.0)
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            stats = await service.stop()
            return service, stats

        service, stats = asyncio.run(scenario())
        assert stats["counters"]["service.drain_builds"] == 1
        assert stats["queue_depth"] == 0
        assert stats["closed"] is True
        shard = stats["shards"][f"{APP}/{profile.input_label}"]
        assert shard["dirty"] is False
        assert shard["plan_version"] == 1
        offline = build_plan(tiny_workload, profile, CFG)
        version = service.builder.latest((APP, profile.input_label))
        assert plans_equivalent(version.plan, offline)

    def test_stop_waits_for_inflight_build(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts

        async def scenario():
            # Eager background builds: stop() races an in-flight one.
            service = make_service(tiny_workload, debounce_s=0.0)
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            stats = await service.stop()
            return stats

        stats = asyncio.run(scenario())
        shard = stats["shards"][f"{APP}/{profile.input_label}"]
        assert shard["dirty"] is False
        assert shard["plan_version"] >= 1
        assert stats["counters"]["service.builds"] == shard["plan_version"]


class TestPublishGate:
    def test_corrupted_plan_is_rejected(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts

        def corrupt(plan):
            entry = next(
                op.entries[0] for ops in plan.ops_by_block.values() for op in ops
            )
            bad = InjectionOp(
                kind=OP_PREFETCH,
                block=tiny_workload.n_blocks + 7,  # out of range: P105
                entries=(entry,),
                bytes_cost=BRPREFETCH_BYTES,
            )
            plan.ops_by_block.setdefault(bad.block, []).append(bad)

        async def scenario():
            service = make_service(tiny_workload, debounce_s=60.0)
            service.builder.post_build_hook = corrupt
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            with pytest.raises(PlanError, match="publish gate"):
                await service.get_plan(APP, profile.input_label)
            # The rejected candidate must not have been published.
            assert service.builder.latest((APP, profile.input_label)) is None
            service.builder.post_build_hook = None
            version = await service.get_plan(APP, profile.input_label)
            stats = await service.stop()
            return version, stats

        version, stats = asyncio.run(scenario())
        assert version.version == 1
        shard = stats["shards"][f"{APP}/{profile.input_label}"]
        assert shard["last_build_error"] is None

    def test_gate_can_be_disabled(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts

        async def scenario():
            service = PlanService(
                workload_for=lambda app: tiny_workload,
                config=ServiceConfig(debounce_s=60.0),
                sim_config=CFG,
                check_plans=False,
            )
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            version = await service.get_plan(APP, profile.input_label)
            await service.stop()
            return version

        assert asyncio.run(scenario()).checked is False


class TestRetries:
    def test_transient_failures_are_retried(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts
        failures = {"left": 2}

        def flaky(plan):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise TransientBuildError("simulated flake")

        async def scenario():
            service = make_service(
                tiny_workload,
                debounce_s=60.0,
                build_retries=2,
                backoff_base_s=0.001,
            )
            service.builder.post_build_hook = flaky
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            version = await service.get_plan(APP, profile.input_label)
            stats = await service.stop()
            return version, stats

        version, stats = asyncio.run(scenario())
        assert version.version == 1
        assert stats["counters"]["service.build_retries"] == 2

    def test_retry_budget_exhausts(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts

        def always_flaky(plan):
            raise TransientBuildError("permanent flake")

        async def scenario():
            service = make_service(
                tiny_workload,
                debounce_s=60.0,
                build_retries=1,
                backoff_base_s=0.001,
            )
            service.builder.post_build_hook = always_flaky
            await service.start()
            await service.ingest(APP, profile.input_label, stream)
            with pytest.raises(TransientBuildError):
                await service.get_plan(APP, profile.input_label)
            service.builder.post_build_hook = None
            await service.stop()

        asyncio.run(scenario())


class TestVersioning:
    def test_versions_and_diffs_accumulate(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts
        half = len(stream) // 2
        assert half > 0

        async def scenario():
            service = make_service(tiny_workload, debounce_s=60.0)
            await service.start()
            await service.ingest(APP, profile.input_label, stream[:half])
            v1 = await service.get_plan(APP, profile.input_label)
            await service.ingest(APP, profile.input_label, stream[half:], seq=1)
            v2 = await service.get_plan(APP, profile.input_label)
            # A clean shard serves the cached version, no rebuild.
            v2_again = await service.get_plan(APP, profile.input_label)
            await service.stop()
            return v1, v2, v2_again

        v1, v2, v2_again = asyncio.run(scenario())
        assert (v1.version, v2.version) == (1, 2)
        assert v2_again is v2
        assert v2.generation > v1.generation
        # v1's diff is against the empty plan: everything is an add.
        assert not v1.diff.dropped and not v1.diff.retargeted
        assert v1.diff.added
        assert v2.diff.churn == len(diff_plans(v1.plan, v2.plan).added) + len(
            diff_plans(v1.plan, v2.plan).dropped
        ) + len(diff_plans(v1.plan, v2.plan).retargeted)
        offline = build_plan(tiny_workload, profile, CFG)
        assert plans_equivalent(v2.plan, offline)
