"""Basic block geometry and cache-line helpers."""

import pytest

from repro.isa.blocks import BasicBlock, cache_line, cache_lines_of_range
from repro.isa.branches import Branch, BranchKind


class TestCacheLineHelpers:
    def test_cache_line_basics(self):
        assert cache_line(0) == 0
        assert cache_line(63) == 0
        assert cache_line(64) == 1

    def test_custom_line_size(self):
        assert cache_line(128, line_bytes=32) == 4

    def test_range_single_line(self):
        assert cache_lines_of_range(0, 64) == (0,)

    def test_range_straddles(self):
        assert cache_lines_of_range(60, 8) == (0, 1)

    def test_range_many_lines(self):
        assert cache_lines_of_range(0, 200) == (0, 1, 2, 3)

    def test_zero_size_range(self):
        assert cache_lines_of_range(100, 0) == (1,)


class TestBasicBlock:
    def _block(self, **kw):
        params = dict(index=0, start=0x1000, size_bytes=32, instructions=8)
        params.update(kw)
        return BasicBlock(**params)

    def test_end_and_fallthrough(self):
        b = self._block()
        assert b.end == 0x1020
        assert b.fallthrough_addr == 0x1020

    def test_contains(self):
        b = self._block()
        assert b.contains(0x1000)
        assert b.contains(0x101F)
        assert not b.contains(0x1020)
        assert not b.contains(0xFFF)

    def test_lines(self):
        b = self._block(start=0x1030, size_bytes=40)
        assert b.lines() == (0x40, 0x41)

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            self._block(size_bytes=0)

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            self._block(instructions=0)

    def test_branch_must_be_inside(self):
        br = Branch(pc=0x2000, kind=BranchKind.RETURN, target=0)
        with pytest.raises(ValueError):
            self._block(branch=br)

    def test_branch_inside_ok(self):
        br = Branch(pc=0x101C, kind=BranchKind.RETURN, target=0)
        b = self._block(branch=br)
        assert b.branch is br
