"""Property-based tests (hypothesis) for the core data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import BTBConfig, CacheConfig
from repro.core.coalescing import build_table, plan_coalescing
from repro.frontend.btb import BTB, FullyAssociativeBTB
from repro.frontend.prefetch_buffer import PrefetchBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.isa.branches import BranchKind, bits_for_offset, offset_fits
from repro.memory.cache import Cache
from repro.workloads.cfg import KIND_UNCOND

K = BranchKind.UNCOND_DIRECT

pcs = st.integers(min_value=0, max_value=1 << 32)
offsets = st.integers(min_value=-(1 << 47), max_value=(1 << 47) - 1)


class TestOffsetProperties:
    @given(offsets)
    def test_bits_for_offset_is_tight(self, off):
        bits = bits_for_offset(off)
        assert offset_fits(off, bits)
        if bits > 1:
            assert not offset_fits(off, bits - 1)

    @given(offsets, st.integers(min_value=1, max_value=48))
    def test_fits_monotone_in_bits(self, off, bits):
        if offset_fits(off, bits):
            assert offset_fits(off, bits + 1)


class TestBTBProperties:
    @given(st.lists(pcs, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, stream):
        btb = BTB(BTBConfig(entries=16, ways=4, entry_bytes=8))
        for pc in stream:
            if btb.lookup(pc) is None:
                btb.insert(pc, pc + 4, K)
        assert len(btb) <= 16

    @given(st.lists(pcs, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_insert_makes_resident(self, stream):
        btb = BTB(BTBConfig(entries=16, ways=4, entry_bytes=8))
        for pc in stream:
            btb.insert(pc, 0, K)
            assert pc in btb  # most-recent insert always resident

    @given(st.lists(pcs, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_counters_consistent(self, stream):
        btb = BTB(BTBConfig(entries=16, ways=4, entry_bytes=8))
        for pc in stream:
            if btb.lookup(pc) is None:
                btb.insert(pc, 0, K)
        assert btb.hits + btb.misses == btb.lookups == len(stream)

    @given(st.lists(pcs, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_fully_associative_dominates_equal_capacity(self, stream):
        """FA-LRU never misses more than set-associative LRU on
        re-references (the premise of conflict-miss classification)."""
        sa = BTB(BTBConfig(entries=16, ways=2, entry_bytes=8))
        fa = FullyAssociativeBTB(16)
        sa_hits = fa_hits = 0
        for pc in stream:
            if sa.lookup(pc) is not None:
                sa_hits += 1
            else:
                sa.insert(pc, 0, K)
            if fa.access(pc):
                fa_hits += 1
        assert fa_hits >= sa_hits


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_capacity_invariant(self, lines):
        cache = Cache(CacheConfig(size_bytes=512, ways=2))  # 8 lines
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
        assert len(cache) <= 8

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=2, max_size=300))
    @settings(max_examples=50)
    def test_immediate_rereference_hits(self, lines):
        cache = Cache(CacheConfig(size_bytes=512, ways=2))
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
            assert cache.contains(line)


class TestRASProperties:
    @given(st.lists(st.integers(min_value=1, max_value=1 << 30),
                    min_size=1, max_size=31))
    @settings(max_examples=50)
    def test_lifo_within_capacity(self, addrs):
        ras = ReturnAddressStack(32)
        for a in addrs:
            ras.push(a)
        for a in reversed(addrs):
            assert ras.pop() == a

    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=100)),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_depth_bounds(self, ops):
        ras = ReturnAddressStack(8)
        for is_push, val in ops:
            if is_push:
                ras.push(val)
            else:
                ras.pop()
            assert 0 <= ras.depth <= 8


class TestPrefetchBufferProperties:
    @given(st.lists(st.tuples(pcs, st.integers(min_value=0, max_value=100)),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_capacity_and_take_semantics(self, inserts):
        buf = PrefetchBuffer(8)
        for pc, ready in inserts:
            buf.insert(pc, pc + 4, K, ready)
            assert len(buf) <= 8
        for pc, _ in inserts:
            taken = buf.take(pc, now=1000)
            if taken is not None:
                # A taken entry is gone.
                assert buf.take(pc, now=1000) is None


class TestCoalescingProperties:
    entries = st.lists(
        st.integers(min_value=0, max_value=1 << 20).map(
            lambda pc: (pc * 4, pc * 4 + 64, KIND_UNCOND)
        ),
        min_size=1,
        max_size=60,
        unique_by=lambda e: e[0],
    )

    @given(entries, st.integers(min_value=1, max_value=64))
    @settings(max_examples=50)
    def test_every_entry_covered_exactly_once_per_block(self, ents, bits):
        per_block = {1: list(ents)}
        table, ops = plan_coalescing(per_block, coalesce_bits=bits)
        covered = [e for op in ops for e in op.entries]
        assert sorted(covered) == sorted(set(ents))

    @given(entries, st.integers(min_value=1, max_value=64))
    @settings(max_examples=50)
    def test_windows_respect_bitmask_width(self, ents, bits):
        per_block = {1: list(ents)}
        table, ops = plan_coalescing(per_block, coalesce_bits=bits)
        for op in ops:
            indices = [table.index_of(e[0]) for e in op.entries]
            assert max(indices) - min(indices) < bits

    @given(entries)
    @settings(max_examples=50)
    def test_table_sorted_unique(self, ents):
        table = build_table(ents)
        pcs_list = [e[0] for e in table.entries]
        assert pcs_list == sorted(set(pcs_list))
