"""Runner details: long traces and budget-scaled competitors."""

import pytest

from repro.config import SimConfig
from repro.experiments.runner import ExperimentRunner, RunnerSettings


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        RunnerSettings(trace_instructions=60_000, apps=("wordpress",), sample_rate=1)
    )


class TestLongTrace:
    def test_longer_than_default(self, runner):
        short = runner.trace("wordpress")
        long = runner.long_trace("wordpress")
        assert len(long) > 2 * len(short)

    def test_cached(self, runner):
        assert runner.long_trace("wordpress") is runner.long_trace("wordpress")

    def test_multiplier(self, runner):
        t2 = runner.long_trace("wordpress", multiplier=2)
        t3 = runner.long_trace("wordpress", multiplier=3)
        assert len(t3) > len(t2)


class TestCompetitorScaling:
    def test_shotgun_partitions_scale_with_budget(self, runner):
        runner.run("wordpress", "shotgun", config=SimConfig().with_btb(entries=2048))
        # Reach inside the cached result path via a fresh simulate call.
        from repro.prefetchers.shotgun import ShotgunBTBSystem

        # The scaling rule itself: budget/8192 applied to both partitions.
        cfg = SimConfig().with_btb(entries=2048)
        scale = cfg.frontend.btb.entries / 8192
        assert int(5120 * scale) == 1280
        assert int(1536 * scale) == 384
        system = ShotgunBTBSystem(
            runner.workload("wordpress"),
            cfg,
            ubtb_entries=max(320, int(5120 * scale)),
            cbtb_entries=max(96, int(1536 * scale)),
        )
        u, c = system.storage_entries()
        assert (u, c) == (1280, 384)

    def test_default_budget_keeps_paper_sizes(self, runner):
        from repro.prefetchers.shotgun import ShotgunBTBSystem

        system = ShotgunBTBSystem(runner.workload("wordpress"), SimConfig())
        assert system.storage_entries() == (5120, 1536)

    def test_scaled_runs_complete(self, runner):
        small = SimConfig().with_btb(entries=2048)
        res = runner.run("wordpress", "shotgun", config=small, cache_tag="scaled")
        assert res.cycles > 0
