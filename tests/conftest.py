"""Shared fixtures: a tiny synthetic app that keeps tests fast."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.trace.walker import generate_trace
from repro.workloads.spec import AppSpec
from repro.workloads.cfg import Workload, build_workload


def make_tiny_spec(name: str = "tinyapp", **overrides) -> AppSpec:
    """A small application spec (~100 functions) for unit tests."""
    params = dict(
        name=name,
        footprint_mb_target=0.1,
        btb_mpki_target=10.0,
        frontend_bound_target=0.5,
        functions=120,
        handler_fraction=0.10,
        mean_blocks_per_function=8,
        popularity_exponent=0.4,
    )
    params.update(overrides)
    return AppSpec(**params)


@pytest.fixture(scope="session")
def tiny_spec() -> AppSpec:
    return make_tiny_spec()


@pytest.fixture(scope="session")
def tiny_workload(tiny_spec) -> Workload:
    return build_workload(tiny_spec, seed=7)


@pytest.fixture(scope="session")
def tiny_trace(tiny_workload):
    inp = tiny_workload.spec.make_input(0)
    return generate_trace(tiny_workload, inp, max_instructions=60_000)


@pytest.fixture(scope="session")
def tiny_trace_alt(tiny_workload):
    inp = tiny_workload.spec.make_input(1)
    return generate_trace(tiny_workload, inp, max_instructions=60_000)


@pytest.fixture()
def config() -> SimConfig:
    return SimConfig()
