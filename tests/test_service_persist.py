"""Snapshot persistence: shard state round-trips, the on-disk store,
and the config gate (repro.service.persist)."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SimConfig
from repro.errors import SnapshotError
from repro.profiling.profile import MissSample
from repro.service.bench import collect_sample_stream
from repro.service.build import IncrementalPlanBuilder, plans_equivalent
from repro.service.ingest import IngestBuffer, SampleBatch
from repro.service.persist import (
    PERSIST_SCHEMA_VERSION,
    SnapshotStore,
    apply_snapshot,
    capture_snapshot,
    plan_version_from_dict,
    plan_version_to_dict,
    shard_from_dict,
    shard_to_dict,
)

CFG = SimConfig().with_btb(entries=512)
APP = "tinyapp"


@pytest.fixture(scope="module")
def stream_artifacts(tiny_workload, tiny_trace):
    profile, stream = collect_sample_stream(tiny_workload, tiny_trace, CFG)
    assert stream, "tiny trace must produce BTB miss samples"
    return profile, stream


def make_buffer(**overrides) -> IngestBuffer:
    defaults = dict(reservoir_capacity=16, hot_threshold=1, seed=3)
    defaults.update(overrides)
    return IngestBuffer(**defaults)


def feed(buffer, stream, label, upto=None, start=0, size=8):
    chunks = [stream[i : i + size] for i in range(0, len(stream), size)]
    total = len(chunks)
    if upto is not None:
        chunks = chunks[:upto]
    for seq, chunk in enumerate(chunks[start:], start=start):
        buffer.ingest(
            SampleBatch(
                app_name=APP, input_label=label, samples=tuple(chunk), seq=seq
            )
        )
    return total


class _NoPlans:
    def latest(self, key):
        return None

    def restore_version(self, version):
        raise AssertionError("no plan restore expected in this test")


class Holder:
    """The slice of PlanService that persist.py actually touches."""

    def __init__(self, buffer, builder=None):
        self.buffer = buffer
        self.builder = builder if builder is not None else _NoPlans()


class TestShardRoundTrip:
    def test_restored_shard_folds_identically(self, stream_artifacts):
        """The convergence kernel: a restored shard must fold future
        batches exactly like the original — including reservoir
        evictions, which depend on the captured RNG state."""
        profile, stream = stream_artifacts
        label = profile.input_label
        # Capacity far below the stream size so the reservoir is
        # overflowing and every further fold consults the RNG.
        original = make_buffer(reservoir_capacity=16)
        total = feed(original, stream, label, upto=6)
        assert total > 8, "need batches left over to fold post-restore"
        shard = original.get((APP, label))
        assert shard.reservoir.evicted > 0, "reservoir must be overflowing"

        data = json.loads(json.dumps(shard_to_dict(shard)))  # disk round-trip
        restored_buffer = make_buffer(reservoir_capacity=16)
        restored = shard_from_dict(data, restored_buffer)

        assert restored.generation == shard.generation
        assert restored.reservoir.items == shard.reservoir.items
        assert restored.sketch._rows == shard.sketch._rows

        feed(original, stream, label, start=6, upto=None)
        feed(restored_buffer, stream, label, start=6, upto=None)
        assert restored.reservoir.items == shard.reservoir.items
        assert restored.reservoir.seen == shard.reservoir.seen
        assert restored.reservoir.evicted == shard.reservoir.evicted
        assert restored.sketch._rows == shard.sketch._rows
        assert restored.counters == shard.counters

    def test_sketch_geometry_mismatch_rejected(self, stream_artifacts):
        profile, stream = stream_artifacts
        buffer = make_buffer(sketch_width=256)
        feed(buffer, stream, profile.input_label, upto=2)
        data = shard_to_dict(buffer.get((APP, profile.input_label)))
        with pytest.raises(SnapshotError, match="sketch geometry"):
            shard_from_dict(data, make_buffer(sketch_width=512))

    def test_reservoir_capacity_mismatch_rejected(self, stream_artifacts):
        profile, stream = stream_artifacts
        buffer = make_buffer(reservoir_capacity=64)
        feed(buffer, stream, profile.input_label, upto=6)
        data = shard_to_dict(buffer.get((APP, profile.input_label)))
        with pytest.raises(SnapshotError, match="capacity"):
            shard_from_dict(data, make_buffer(reservoir_capacity=8))

    def test_malformed_shard_rejected(self):
        with pytest.raises(SnapshotError, match="malformed shard snapshot"):
            shard_from_dict({"app": "a"}, make_buffer())


class TestPlanVersionRoundTrip:
    def test_roundtrip_preserves_lineage_fields(
        self, tiny_workload, stream_artifacts
    ):
        profile, stream = stream_artifacts
        buffer = make_buffer(reservoir_capacity=1 << 20)
        feed(buffer, stream, profile.input_label)
        builder = IncrementalPlanBuilder(
            workload_for=lambda app: tiny_workload,
            config=CFG,
            check_plans=False,
        )
        version = builder.build(buffer.get((APP, profile.input_label)))
        data = json.loads(json.dumps(plan_version_to_dict(version)))
        loaded = plan_version_from_dict(data)
        assert loaded.key == version.key
        assert loaded.version == version.version
        assert loaded.generation == version.generation
        assert loaded.samples == version.samples
        assert loaded.diff == version.diff
        assert plans_equivalent(loaded.plan, version.plan)

    def test_restore_version_continues_lineage(
        self, tiny_workload, stream_artifacts
    ):
        profile, stream = stream_artifacts
        label = profile.input_label
        buffer = make_buffer(reservoir_capacity=1 << 20)
        feed(buffer, stream, label, upto=4)
        builder = IncrementalPlanBuilder(
            workload_for=lambda app: tiny_workload,
            config=CFG,
            check_plans=False,
        )
        v1 = builder.build(buffer.get((APP, label)))

        reloaded = IncrementalPlanBuilder(
            workload_for=lambda app: tiny_workload,
            config=CFG,
            check_plans=False,
        )
        reloaded.restore_version(
            plan_version_from_dict(
                json.loads(json.dumps(plan_version_to_dict(v1)))
            )
        )
        feed(buffer, stream, label, start=4)
        v2 = reloaded.build(buffer.get((APP, label)))
        assert v2.version == v1.version + 1
        # The diff is taken against the restored plan, not from empty.
        assert v2.diff != v1.diff or not v1.diff.added

    def test_malformed_plan_version_rejected(self):
        with pytest.raises(SnapshotError, match="malformed plan-version"):
            plan_version_from_dict({"app": "a", "input": "b"})


class TestCaptureApply:
    def test_capture_apply_roundtrip(self, tiny_workload, stream_artifacts):
        profile, stream = stream_artifacts
        label = profile.input_label
        buffer = make_buffer()
        feed(buffer, stream, label, upto=5)
        builder = IncrementalPlanBuilder(
            workload_for=lambda app: tiny_workload,
            config=CFG,
            check_plans=False,
        )
        built = builder.build(buffer.get((APP, label)))
        source = Holder(buffer, builder)
        data = json.loads(
            json.dumps(capture_snapshot(source, 1, {(APP, label): 5}))
        )
        assert data["schema_version"] == PERSIST_SCHEMA_VERSION
        assert data["kind"] == "service_snapshot"

        target_builder = IncrementalPlanBuilder(
            workload_for=lambda app: tiny_workload,
            config=CFG,
            check_plans=False,
        )
        target = Holder(make_buffer(), target_builder)
        shards, plans, counts = apply_snapshot(target, data)
        assert shards == 1
        assert plans == 1
        assert counts == {(APP, label): 5}
        restored = target_builder.latest((APP, label))
        assert restored.version == built.version
        assert plans_equivalent(restored.plan, built.plan)

    def test_config_mismatch_is_a_hard_gate(self, stream_artifacts):
        profile, stream = stream_artifacts
        buffer = make_buffer(seed=3)
        feed(buffer, stream, profile.input_label, upto=2)
        data = capture_snapshot(Holder(buffer), 1, {})
        with pytest.raises(SnapshotError, match="seed"):
            apply_snapshot(Holder(make_buffer(seed=4)), data)

    def test_wrong_kind_rejected(self):
        with pytest.raises(SnapshotError, match="not a serialized"):
            apply_snapshot(Holder(make_buffer()), {"kind": "profile"})

    def test_unknown_schema_version_rejected(self, stream_artifacts):
        profile, stream = stream_artifacts
        buffer = make_buffer()
        feed(buffer, stream, profile.input_label, upto=1)
        data = capture_snapshot(Holder(buffer), 1, {})
        data["schema_version"] = 999
        with pytest.raises(SnapshotError, match="schema"):
            apply_snapshot(Holder(make_buffer()), data)


class TestSnapshotStore:
    def payload(self, seq: int) -> dict:
        return {
            "format": PERSIST_SCHEMA_VERSION,
            "schema_version": PERSIST_SCHEMA_VERSION,
            "kind": "service_snapshot",
            "seq": seq,
        }

    def test_latest_returns_newest(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=3)
        for seq in (1, 2, 3):
            store.write(self.payload(seq))
        assert store.latest()["seq"] == 3

    def test_latest_skips_torn_file(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=3)
        store.write(self.payload(1))
        store.write(self.payload(2))
        # Tear the newest snapshot on disk; latest() must fall back.
        torn = os.path.join(str(tmp_path), "snapshot-00000002.json")
        with open(torn, "w", encoding="utf-8") as fh:
            fh.write('{"schema_version": 1, "kind": "service_snap')
        assert store.latest()["seq"] == 1

    def test_latest_empty_dir_is_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).latest() is None

    def test_unknown_schema_version_raises(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        bad = self.payload(1)
        bad["schema_version"] = 999
        bad["format"] = 999
        store.write(bad)
        with pytest.raises(SnapshotError, match="schema"):
            store.latest()

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for seq in range(1, 6):
            store.write(self.payload(seq))
        names = sorted(os.listdir(str(tmp_path)))
        assert names == ["snapshot-00000004.json", "snapshot-00000005.json"]

    def test_write_without_seq_rejected(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        with pytest.raises(SnapshotError, match="seq"):
            store.write({"kind": "service_snapshot"})

    def test_bad_keep_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="keep"):
            SnapshotStore(str(tmp_path), keep=0)

    def test_unwritable_directory_rejected(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("file, not dir")
        with pytest.raises(SnapshotError, match="cannot create"):
            SnapshotStore(str(blocker / "snaps"))

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write(self.payload(1))
        assert not [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]
