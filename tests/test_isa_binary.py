"""Binary container: indexing, predecode, statistics."""

import pytest

from repro.errors import WorkloadError
from repro.isa.binary import Binary
from repro.isa.blocks import BasicBlock
from repro.isa.branches import Branch, BranchKind


def _mk_block(index, start, size=32, branch_kind=None, target=0):
    branch = None
    if branch_kind is not None:
        branch = Branch(
            pc=start + size - 4,
            kind=branch_kind,
            target=target,
            fallthrough=start + size if branch_kind.is_conditional else None,
        )
    return BasicBlock(
        index=index, start=start, size_bytes=size, instructions=size // 4, branch=branch
    )


@pytest.fixture()
def small_binary():
    blocks = [
        _mk_block(0, 0x1000, branch_kind=BranchKind.UNCOND_DIRECT, target=0x1040),
        _mk_block(1, 0x1040, branch_kind=BranchKind.COND_DIRECT, target=0x1080),
        _mk_block(2, 0x1080),
        _mk_block(3, 0x10C0, branch_kind=BranchKind.RETURN),
    ]
    return Binary(blocks)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Binary([])

    def test_overlap_rejected(self):
        blocks = [_mk_block(0, 0x1000, size=64), _mk_block(1, 0x1020)]
        with pytest.raises(WorkloadError):
            Binary(blocks)

    def test_blocks_sorted_by_start(self):
        blocks = [_mk_block(1, 0x2000), _mk_block(0, 0x1000)]
        b = Binary(blocks)
        assert [blk.start for blk in b] == [0x1000, 0x2000]

    def test_len(self, small_binary):
        assert len(small_binary) == 4


class TestLookups:
    def test_block_at(self, small_binary):
        assert small_binary.block_at(0x1040).start == 0x1040

    def test_block_at_missing(self, small_binary):
        with pytest.raises(KeyError):
            small_binary.block_at(0x1041)

    def test_block_containing(self, small_binary):
        assert small_binary.block_containing(0x1050).start == 0x1040

    def test_block_containing_gap(self, small_binary):
        assert small_binary.block_containing(0x500) is None

    def test_branch_at(self, small_binary):
        br = small_binary.branch_at(0x1000 + 32 - 4)
        assert br is not None and br.kind is BranchKind.UNCOND_DIRECT

    def test_branch_at_non_branch(self, small_binary):
        assert small_binary.branch_at(0x1000) is None

    def test_branches_sorted(self, small_binary):
        pcs = [b.pc for b in small_binary.branches()]
        assert pcs == sorted(pcs)
        assert len(pcs) == 3


class TestPredecode:
    def test_branches_in_line(self, small_binary):
        # Blocks at 0x1000 and 0x1040 span lines 0x40 and 0x41.
        line0 = small_binary.branches_in_line(0x1000 // 64)
        assert any(b.kind is BranchKind.UNCOND_DIRECT for b in line0)

    def test_branches_in_empty_line(self, small_binary):
        assert small_binary.branches_in_line(0) == ()

    def test_branches_in_lines_multi(self, small_binary):
        found = small_binary.branches_in_lines([0x40, 0x41, 0x43])
        assert len(found) == 3


class TestStatistics:
    def test_static_branch_count(self, small_binary):
        assert small_binary.static_branch_count() == 3
        assert small_binary.static_branch_count(BranchKind.COND_DIRECT) == 1
        assert small_binary.static_branch_count(BranchKind.CALL_DIRECT) == 0

    def test_text_bytes(self, small_binary):
        assert small_binary.text_bytes() == 4 * 32

    def test_total_instructions(self, small_binary):
        assert small_binary.total_instructions() == 4 * 8

    def test_address_span(self, small_binary):
        lo, hi = small_binary.address_span()
        assert lo == 0x1000 and hi == 0x10C0 + 32
